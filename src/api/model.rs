//! [`ScenarioModel`] — the class-polymorphic model layer behind
//! [`Solve`](super::Solve).
//!
//! The paper's results hold uniformly across its three instance classes;
//! this module makes the code match. One trait abstracts everything a task
//! driver needs from a scenario — equilibrium profiles ([`ModelProfile`]),
//! the β-optimal plan ([`BetaPlan`], OpTop / MOP / Theorem 2.1), induced
//! solves for a Leader flow, marginal-cost tolls, the LLF baseline, and the
//! per-class α-portion policy behind the anarchy curve — so the dispatch in
//! [`solve`](super::solve) is written once against the trait and every task
//! lands on all classes at once. The engine's profile memo
//! ([`super::engine::cache`]) is generic over the same trait: one entry
//! point, keyed by `(class, canonical spec, equilibrium kind, solver
//! knobs)`, replaces the hand-rolled per-class tables.
//!
//! Implementations exist for the three instance types themselves
//! ([`ParallelLinks`], [`NetworkInstance`], [`MultiCommodityInstance`]);
//! [`Scenario::model`](super::Scenario) hands out the right one — the only
//! per-class `match` left in the session layer.

use sopt_core::curve::{
    anarchy_curve, anarchy_curve_multi_with, anarchy_curve_network_with, CurveOptions, CurveOracle,
    CurveStrategy, NetworkAnarchyCurve,
};
use sopt_core::llf::llf_strategy_for_optimum;
use sopt_core::tolls::{
    try_marginal_cost_tolls_multi_with_optimum, try_marginal_cost_tolls_network_with_optimum,
    try_marginal_cost_tolls_with_optimum,
};
use sopt_core::{try_mop_multi_with_optimum, try_mop_with_optimum, try_optop};
use sopt_equilibrium::network::{
    try_induced_multicommodity, try_induced_network, try_multicommodity_nash,
    try_multicommodity_optimum, try_network_nash, try_network_optimum, warm_seed_from,
    warm_seed_from_per,
};
use sopt_equilibrium::parallel::ParallelLinks;
use sopt_latency::LatencyFn;
use sopt_network::csr::{Csr, RevCsr, SpMode, SpWorkspace};
use sopt_network::flow::EdgeFlow;
use sopt_network::instance::{MultiCommodityInstance, NetworkInstance};
use sopt_solver::frank_wolfe::{FwOptions, FwResult};

use super::error::SoptError;
use super::report::{
    CurvePointReport, CurveReport, LlfReport, PricingReport, PricingSweepPoint, TollsReport,
};
use super::scenario::ScenarioClass;
use super::solve::{SolveOptions, Task};

/// Which equilibrium a profile holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EqKind {
    /// The Wardrop/Nash assignment.
    Nash,
    /// The system optimum.
    Optimum,
}

impl EqKind {
    /// The name used in `NotConverged` diagnostics and logs.
    pub fn what(self) -> &'static str {
        match self {
            EqKind::Nash => "nash",
            EqKind::Optimum => "optimum",
        }
    }
}

/// A Nash/optimum equilibrium profile of any scenario class — the value the
/// engine's profile memo stores and every task driver consumes.
#[derive(Clone, Debug)]
pub enum ModelProfile {
    /// Parallel-link flows plus the common level (Nash latency or optimum
    /// marginal cost) from the knob-free equalizer.
    Parallel {
        /// Per-link flows.
        flows: Vec<f64>,
        /// The common level.
        level: f64,
    },
    /// A network / multicommodity Frank–Wolfe solve.
    Flow(FwResult),
}

impl ModelProfile {
    /// The combined per-link/edge flows.
    pub fn flows(&self) -> &[f64] {
        match self {
            ModelProfile::Parallel { flows, .. } => flows,
            ModelProfile::Flow(r) => r.flow.as_slice(),
        }
    }

    /// The equalizer's common level (parallel links only).
    pub fn level(&self) -> Option<f64> {
        match self {
            ModelProfile::Parallel { level, .. } => Some(*level),
            ModelProfile::Flow(_) => None,
        }
    }

    /// The underlying Frank–Wolfe result (FW-solved classes only).
    pub fn flow_result(&self) -> Option<&FwResult> {
        match self {
            ModelProfile::Parallel { .. } => None,
            ModelProfile::Flow(r) => Some(r),
        }
    }

    /// The FW result a plan consumer requires; a typed error naming the
    /// absent/wrong-class anchor when the public trait is misused.
    fn require_flow<'a>(
        profile: Option<&'a ModelProfile>,
        name: &'static str,
    ) -> Result<&'a FwResult, SoptError> {
        profile
            .and_then(ModelProfile::flow_result)
            .ok_or(SoptError::MissingParameter {
                name,
                reason: "this scenario class consumes Frank–Wolfe equilibrium profiles",
            })
    }
}

/// The Leader's β-optimal plan: what `Task::Beta` reports and what seeds
/// the induced verification solve.
#[derive(Clone, Debug)]
pub struct BetaPlan {
    /// The price of optimum `β`.
    pub beta: f64,
    /// Per-commodity portions `α_i` (empty unless the class reports them).
    pub commodity_alphas: Vec<f64>,
    /// The Leader's strategy (per link/edge, combined over commodities).
    pub leader: Vec<f64>,
    /// Per-commodity controlled values (one entry for single-commodity
    /// classes).
    pub leader_values: Vec<f64>,
    /// The optimum assignment the strategy enforces.
    pub optimum: Vec<f64>,
    /// `C(O)`.
    pub optimum_cost: f64,
    /// `C(N)` when the plan computed it as a by-product (OpTop does); the
    /// driver falls back to the memoized Nash profile otherwise.
    pub nash_cost: Option<f64>,
    /// Warm seed for the induced verification solve (the free flow *is* the
    /// follower equilibrium the strategy induces).
    pub induced_seed: Option<FwResult>,
}

/// The follower side of an induced equilibrium.
#[derive(Clone, Debug)]
pub struct InducedOutcome {
    /// Follower flows (combined over commodities).
    pub follower: Vec<f64>,
    /// The full Frank–Wolfe result for warm chaining (FW classes only).
    pub result: Option<FwResult>,
}

/// One interface over the paper's three instance classes. See the module
/// docs; [`super::solve`] is written entirely against this trait.
pub trait ScenarioModel {
    /// The instance class.
    fn class(&self) -> ScenarioClass;

    /// Number of commodities (1 for parallel links and s–t networks).
    fn commodities(&self) -> usize;

    /// Total cost `C(f)` of a combined flow.
    fn cost(&self, flow: &[f64]) -> f64;

    /// Whether profile values depend on the Frank–Wolfe knob set (`false`
    /// for the knob-free parallel equalizer) — this decides how the memo
    /// keys an entry.
    fn fw_keyed(&self) -> bool;

    /// Whether `task` is defined on this class. Undefined pairs return
    /// [`SoptError::Unsupported`] without touching a solver.
    fn supports(&self, task: Task) -> bool;

    /// Solve one equilibrium **cold** (the memo-miss path — never
    /// warm-started, so an entry's value depends only on its key).
    fn solve_profile(&self, kind: EqKind, fw: &FwOptions) -> Result<ModelProfile, SoptError>;

    /// Whether [`ScenarioModel::beta_plan`] consumes the memoized optimum
    /// profile (OpTop derives its own equilibria internally).
    fn plan_needs_optimum(&self) -> bool {
        true
    }

    /// The β-optimal plan (OpTop / MOP / Theorem 2.1).
    fn beta_plan(&self, optimum: Option<&ModelProfile>) -> Result<BetaPlan, SoptError>;

    /// The equilibrium induced by a Leader flow controlling
    /// `leader_values[i]` of commodity `i`, optionally warm-seeded.
    fn induced(
        &self,
        leader: &[f64],
        leader_values: &[f64],
        fw: &FwOptions,
        seed: Option<&FwResult>,
    ) -> Result<InducedOutcome, SoptError>;

    /// Marginal-cost tolls at the supplied optimum, including the tolled
    /// equilibrium solve.
    fn tolls(&self, optimum: &ModelProfile, fw: &FwOptions) -> Result<TollsReport, SoptError>;

    /// The LLF baseline at Leader portion `alpha` (parallel links only).
    fn llf(&self, alpha: f64, optimum: &ModelProfile) -> Result<LlfReport, SoptError>;

    /// Whether [`ScenarioModel::pricing`] consumes the memoized unpriced
    /// Nash profile (network pricing anchors its candidates on it; the
    /// parallel solvers are equalizer-driven).
    fn pricing_needs_nash(&self) -> bool {
        false
    }

    /// The pricing task: the competitive pricing Nash equilibrium
    /// (parallel links — closed form on the affine class, best-response
    /// dynamics elsewhere) or the Briest–Hoefer–Krysta single-price
    /// auction (networks with `[priceable]` edges), plus the revenue-vs-β
    /// sweep at scaled prices.
    fn pricing(
        &self,
        options: &SolveOptions,
        nash: Option<&ModelProfile>,
    ) -> Result<PricingReport, SoptError>;

    /// The anarchy-value curve sampled at `alphas`, anchored on the
    /// supplied (memoized) profiles. `strategy` selects the weak/strong
    /// portion split on k-commodity classes (single-commodity classes
    /// coincide).
    fn anarchy_curve(
        &self,
        alphas: &[f64],
        strategy: CurveStrategy,
        fw: &FwOptions,
        optimum: &ModelProfile,
        nash: &ModelProfile,
    ) -> Result<CurveReport, SoptError>;
}

/// The JSON name of a curve oracle.
pub(crate) fn oracle_name(o: CurveOracle) -> &'static str {
    match o {
        CurveOracle::Exact => "exact",
        CurveOracle::BruteForce => "brute-force",
        CurveOracle::HeuristicUpperBound => "heuristic-upper-bound",
    }
}

/// Map curve samples — any class's `(α, cost, ratio, oracle)` stream —
/// into report points. The single place the point shape is wired, so the
/// parallel and induced-sweep curves cannot drift apart.
fn points_report(
    points: impl Iterator<Item = (f64, f64, f64, CurveOracle)>,
) -> Vec<CurvePointReport> {
    points
        .map(|(alpha, cost, ratio, oracle)| CurvePointReport {
            alpha,
            cost,
            ratio,
            oracle: oracle_name(oracle),
        })
        .collect()
}

/// Map a core induced-sweep curve into the report shape. `weak_beta` is
/// reported only where the split is a real choice (k > 1).
fn curve_report_from(c: &NetworkAnarchyCurve, commodities: usize) -> CurveReport {
    CurveReport {
        beta: c.beta,
        weak_beta: (commodities > 1).then_some(c.weak_beta),
        strategy: c.strategy.name(),
        nash_cost: c.nash_cost,
        optimum_cost: c.optimum_cost,
        points: points_report(
            c.points
                .iter()
                .map(|p| (p.alpha, p.cost, p.ratio, p.oracle)),
        ),
    }
}

fn check_converged(r: &FwResult, what: &'static str) -> Result<(), SoptError> {
    if r.converged {
        Ok(())
    } else {
        Err(SoptError::NotConverged {
            what: what.to_string(),
            rel_gap: r.rel_gap,
        })
    }
}

fn checked_profile(r: FwResult, kind: EqKind) -> Result<ModelProfile, SoptError> {
    if r.converged {
        Ok(ModelProfile::Flow(r))
    } else {
        Err(SoptError::NotConverged {
            what: kind.what().to_string(),
            rel_gap: r.rel_gap,
        })
    }
}

// ---------------------------------------------------------------------------
// Parallel links (paper §4: OpTop, the knob-free equalizer).
// ---------------------------------------------------------------------------

impl ScenarioModel for ParallelLinks {
    fn class(&self) -> ScenarioClass {
        ScenarioClass::Parallel
    }

    fn commodities(&self) -> usize {
        1
    }

    fn cost(&self, flow: &[f64]) -> f64 {
        ParallelLinks::cost(self, flow)
    }

    fn fw_keyed(&self) -> bool {
        false
    }

    fn supports(&self, _task: Task) -> bool {
        true
    }

    fn solve_profile(&self, kind: EqKind, _fw: &FwOptions) -> Result<ModelProfile, SoptError> {
        let profile = match kind {
            EqKind::Nash => self.try_nash()?,
            EqKind::Optimum => self.try_optimum()?,
        };
        Ok(ModelProfile::Parallel {
            flows: profile.flows().to_vec(),
            level: profile.level(),
        })
    }

    fn plan_needs_optimum(&self) -> bool {
        // OpTop's recursion equalizes its own subsystems; a pre-solved
        // global optimum would be redundant work on memo-less fleets.
        false
    }

    fn beta_plan(&self, _optimum: Option<&ModelProfile>) -> Result<BetaPlan, SoptError> {
        let r = try_optop(self)?;
        let controlled: f64 = r.strategy.iter().sum();
        Ok(BetaPlan {
            beta: r.beta,
            commodity_alphas: vec![],
            leader: r.strategy,
            leader_values: vec![controlled],
            optimum: r.optimum,
            optimum_cost: r.optimum_cost,
            nash_cost: Some(r.nash_cost),
            induced_seed: None,
        })
    }

    fn induced(
        &self,
        leader: &[f64],
        _leader_values: &[f64],
        _fw: &FwOptions,
        _seed: Option<&FwResult>,
    ) -> Result<InducedOutcome, SoptError> {
        let induced = self.try_induced(leader)?;
        Ok(InducedOutcome {
            follower: induced.follower,
            result: None,
        })
    }

    fn tolls(&self, optimum: &ModelProfile, _fw: &FwOptions) -> Result<TollsReport, SoptError> {
        let t = try_marginal_cost_tolls_with_optimum(self, optimum.flows().to_vec());
        let tolled_nash = t.tolled.try_nash()?;
        Ok(TollsReport {
            tolled_cost: self.cost(tolled_nash.flows()),
            tolled_nash: tolled_nash.flows().to_vec(),
            tolls: t.tolls,
            optimum: t.optimum,
            revenue: t.revenue,
        })
    }

    fn llf(&self, alpha: f64, optimum: &ModelProfile) -> Result<LlfReport, SoptError> {
        let strategy = llf_strategy_for_optimum(self, optimum.flows(), alpha);
        let cost = self.try_induced_cost(&strategy)?;
        let optimum_cost = self.cost(optimum.flows());
        Ok(LlfReport {
            alpha,
            strategy,
            cost,
            optimum_cost,
            ratio: cost / optimum_cost,
            bound: 1.0 / alpha,
        })
    }

    fn pricing(
        &self,
        options: &SolveOptions,
        _nash: Option<&ModelProfile>,
    ) -> Result<PricingReport, SoptError> {
        let (eq, method) = if sopt_pricing::is_affine(self) {
            (sopt_pricing::closed_form_affine(self)?, "closed-form")
        } else {
            let eq = sopt_pricing::best_response(
                self,
                options.price_steps,
                options.price_rounds,
                options.tolerance.max(1e-12),
            )?;
            (eq, "best-response")
        };
        // Revenue at β-scaled equilibrium prices, β over [0, 2]: the
        // equilibrium is the stationary point, so the sweep shows the
        // concave revenue hill around β = 1.
        let sweep: Result<Vec<PricingSweepPoint>, SoptError> = (0..=options.steps)
            .map(|j| {
                let beta = 2.0 * j as f64 / options.steps as f64;
                let scaled: Vec<f64> = eq.prices.iter().map(|&p| beta * p).collect();
                let (flows, _) = sopt_pricing::priced_nash(self, &scaled)?;
                Ok(PricingSweepPoint {
                    beta,
                    revenue: sopt_pricing::revenue_of(&scaled, &flows),
                })
            })
            .collect();
        Ok(PricingReport {
            method,
            prices: eq.prices,
            flows: eq.flows,
            revenue: eq.revenue,
            level: Some(eq.level),
            sweep: sweep?,
        })
    }

    fn anarchy_curve(
        &self,
        alphas: &[f64],
        strategy: CurveStrategy,
        _fw: &FwOptions,
        _optimum: &ModelProfile,
        _nash: &ModelProfile,
    ) -> Result<CurveReport, SoptError> {
        // The profiles already gated feasibility (anarchy_curve calls the
        // panicking internals); the exact/brute-force/heuristic oracle
        // selection lives in the core curve. Weak and strong coincide on a
        // single commodity.
        let c = anarchy_curve(self, alphas);
        Ok(CurveReport {
            beta: c.beta,
            weak_beta: None,
            strategy: strategy.name(),
            nash_cost: c.nash_cost,
            optimum_cost: c.optimum_cost,
            points: points_report(
                c.points
                    .iter()
                    .map(|p| (p.alpha, p.cost, p.ratio, p.oracle)),
            ),
        })
    }
}

// ---------------------------------------------------------------------------
// Single-commodity s–t networks (MOP, Corollary 2.3).
// ---------------------------------------------------------------------------

impl ScenarioModel for NetworkInstance {
    fn class(&self) -> ScenarioClass {
        ScenarioClass::Network
    }

    fn commodities(&self) -> usize {
        1
    }

    fn cost(&self, flow: &[f64]) -> f64 {
        NetworkInstance::cost(self, flow)
    }

    fn fw_keyed(&self) -> bool {
        true
    }

    fn supports(&self, task: Task) -> bool {
        !matches!(task, Task::Llf)
    }

    fn solve_profile(&self, kind: EqKind, fw: &FwOptions) -> Result<ModelProfile, SoptError> {
        let r = match kind {
            EqKind::Nash => try_network_nash(self, fw, None),
            EqKind::Optimum => try_network_optimum(self, fw, None),
        }?;
        checked_profile(r, kind)
    }

    fn beta_plan(&self, optimum: Option<&ModelProfile>) -> Result<BetaPlan, SoptError> {
        let r = try_mop_with_optimum(self, ModelProfile::require_flow(optimum, "optimum")?)?;
        Ok(BetaPlan {
            beta: r.beta,
            commodity_alphas: vec![],
            leader: r.leader.as_slice().to_vec(),
            leader_values: vec![r.leader_value],
            optimum: r.optimum.as_slice().to_vec(),
            optimum_cost: r.optimum_cost,
            nash_cost: None,
            // The free flow IS the follower equilibrium the MOP strategy
            // induces (S + T = O), so it seeds the induced solve to
            // near-instant convergence.
            induced_seed: Some(warm_seed_from(&r.free_flow)),
        })
    }

    fn induced(
        &self,
        leader: &[f64],
        leader_values: &[f64],
        fw: &FwOptions,
        seed: Option<&FwResult>,
    ) -> Result<InducedOutcome, SoptError> {
        let leader = EdgeFlow(leader.to_vec());
        let value = leader_values.first().copied().unwrap_or(0.0);
        let r = try_induced_network(self, &leader, value, fw, seed)?;
        check_converged(&r, "induced")?;
        Ok(InducedOutcome {
            follower: r.flow.as_slice().to_vec(),
            result: Some(r),
        })
    }

    fn tolls(&self, optimum: &ModelProfile, fw: &FwOptions) -> Result<TollsReport, SoptError> {
        let opt = ModelProfile::require_flow(Some(optimum), "optimum")?;
        let t = try_marginal_cost_tolls_network_with_optimum(self, opt)?;
        // Marginal-cost tolls induce the untolled optimum — seed the tolled
        // Nash with it.
        let seed = warm_seed_from(&opt.flow);
        let tolled_nash = try_network_nash(&t.tolled, fw, Some(&seed))?;
        check_converged(&tolled_nash, "tolled nash")?;
        Ok(TollsReport {
            tolled_cost: self.cost(tolled_nash.flow.as_slice()),
            tolled_nash: tolled_nash.flow.as_slice().to_vec(),
            tolls: t.tolls,
            optimum: t.optimum,
            revenue: t.revenue,
        })
    }

    fn llf(&self, _alpha: f64, _optimum: &ModelProfile) -> Result<LlfReport, SoptError> {
        Err(SoptError::Unsupported {
            task: Task::Llf,
            class: self.class(),
        })
    }

    fn pricing_needs_nash(&self) -> bool {
        true
    }

    fn pricing(
        &self,
        options: &SolveOptions,
        nash: Option<&ModelProfile>,
    ) -> Result<PricingReport, SoptError> {
        let priceable = self.priceable_edges();
        if priceable.is_empty() {
            return Err(SoptError::MissingParameter {
                name: "priceable",
                reason: "network pricing needs at least one edge marked '[priceable]' in the spec",
            });
        }
        let nash = ModelProfile::require_flow(nash, "nash")?;
        // Candidate prices from shortest-path gaps at the unpriced Nash
        // congestion (Briest–Hoefer–Krysta single-price auction): d_free
        // uses the priceable edges at toll 0, d_block forbids them.
        let costs = self.edge_costs(nash.flow.as_slice());
        // Single-target queries: the early-exit/bidirectional workspace
        // settles only what the s→t answer needs instead of the whole graph.
        let csr = Csr::new(&self.graph);
        let rcsr = RevCsr::new(&self.graph);
        let mut sp = SpWorkspace::new();
        let d_free = sp
            .shortest_to(
                &csr,
                Some(&rcsr),
                &costs,
                self.source,
                self.sink,
                SpMode::Auto,
            )
            .unwrap_or(f64::INFINITY);
        let mut blocked = costs;
        for &e in &priceable {
            blocked[e] = f64::INFINITY;
        }
        let d_block = sp
            .shortest_to(
                &csr,
                Some(&rcsr),
                &blocked,
                self.source,
                self.sink,
                SpMode::Auto,
            )
            .unwrap_or(f64::INFINITY);
        if !d_block.is_finite() {
            return Err(SoptError::UnboundedRevenue {
                reason: "the priceable edges cut every s→t path; against inelastic demand \
                         their owner can charge arbitrarily much"
                    .into(),
            });
        }
        let candidates =
            sopt_pricing::single_price_candidates(d_free, d_block, options.price_steps);
        let fw = options.fw();
        // One tolled Nash per candidate, warm-chained: adjacent candidates
        // perturb only the priceable tolls, so the previous equilibrium is
        // an excellent seed.
        let solve_at = |p: f64, seed: &FwResult| -> Result<FwResult, SoptError> {
            // Each candidate price costs one tolled-Nash solve; the
            // auction_candidate histogram shows whether warm-chaining
            // keeps that unit cheap across the candidate grid.
            let _candidate = sopt_obs::global().span(sopt_obs::Phase::AuctionCandidate);
            let latencies: Vec<LatencyFn> = self
                .latencies
                .iter()
                .enumerate()
                .map(|(e, l)| {
                    if self.priceable[e] {
                        l.tolled(p)
                    } else {
                        l.clone()
                    }
                })
                .collect();
            let tolled = NetworkInstance::new(
                self.graph.clone(),
                latencies,
                self.source,
                self.sink,
                self.rate,
            );
            let r = try_network_nash(&tolled, &fw, Some(seed))?;
            check_converged(&r, "priced nash")?;
            Ok(r)
        };
        let revenue_at = |p: f64, r: &FwResult| -> f64 {
            p * priceable.iter().map(|&e| r.flow.as_slice()[e]).sum::<f64>()
        };
        let mut seed = warm_seed_from(&nash.flow);
        let mut best_p = 0.0;
        let mut best_rev = 0.0;
        let mut best_flow: Vec<f64> = nash.flow.as_slice().to_vec();
        for &p in &candidates {
            let r = solve_at(p, &seed)?;
            let rev = revenue_at(p, &r);
            if rev > best_rev {
                best_rev = rev;
                best_p = p;
                best_flow = r.flow.as_slice().to_vec();
            }
            seed = r;
        }
        // Revenue at β-scaled winning prices, warm-chained along the grid.
        let sweep: Result<Vec<PricingSweepPoint>, SoptError> = (0..=options.steps)
            .map(|j| {
                let beta = 2.0 * j as f64 / options.steps as f64;
                let r = solve_at(beta * best_p, &seed)?;
                let revenue = revenue_at(beta * best_p, &r);
                seed = r;
                Ok(PricingSweepPoint { beta, revenue })
            })
            .collect();
        let mut prices = vec![0.0; self.num_edges()];
        for &e in &priceable {
            prices[e] = best_p;
        }
        Ok(PricingReport {
            method: "single-price-auction",
            prices,
            flows: best_flow,
            revenue: best_rev,
            level: None,
            sweep: sweep?,
        })
    }

    fn anarchy_curve(
        &self,
        alphas: &[f64],
        strategy: CurveStrategy,
        fw: &FwOptions,
        optimum: &ModelProfile,
        nash: &ModelProfile,
    ) -> Result<CurveReport, SoptError> {
        let c = anarchy_curve_network_with(
            self,
            alphas,
            fw,
            true,
            ModelProfile::require_flow(Some(optimum), "optimum")?,
            ModelProfile::require_flow(Some(nash), "nash")?,
        )?;
        let mut report = curve_report_from(&c, self.commodities());
        // One commodity: the weak and strong splits coincide; echo the
        // knob the caller asked for.
        report.strategy = strategy.name();
        Ok(report)
    }
}

// ---------------------------------------------------------------------------
// k-commodity networks (Theorem 2.1).
// ---------------------------------------------------------------------------

impl ScenarioModel for MultiCommodityInstance {
    fn class(&self) -> ScenarioClass {
        ScenarioClass::Multi
    }

    fn commodities(&self) -> usize {
        self.commodities.len()
    }

    fn cost(&self, flow: &[f64]) -> f64 {
        MultiCommodityInstance::cost(self, flow)
    }

    fn fw_keyed(&self) -> bool {
        true
    }

    fn supports(&self, task: Task) -> bool {
        // Single-price network pricing is an s–t notion; a per-commodity
        // generalisation is future work (see ROADMAP.md).
        !matches!(task, Task::Llf | Task::Pricing)
    }

    fn solve_profile(&self, kind: EqKind, fw: &FwOptions) -> Result<ModelProfile, SoptError> {
        let r = match kind {
            EqKind::Nash => try_multicommodity_nash(self, fw, None),
            EqKind::Optimum => try_multicommodity_optimum(self, fw, None),
        }?;
        checked_profile(r, kind)
    }

    fn beta_plan(&self, optimum: Option<&ModelProfile>) -> Result<BetaPlan, SoptError> {
        let r = try_mop_multi_with_optimum(self, ModelProfile::require_flow(optimum, "optimum")?)?;
        Ok(BetaPlan {
            beta: r.beta,
            commodity_alphas: r.commodities.iter().map(|c| c.alpha).collect(),
            leader: r.leader_total.as_slice().to_vec(),
            leader_values: r.commodities.iter().map(|c| c.leader_value).collect(),
            optimum: r.optimum_total.as_slice().to_vec(),
            optimum_cost: r.optimum_cost,
            nash_cost: None,
            // Per-commodity free flows are the follower equilibria the
            // strategy induces — the exact warm seed.
            induced_seed: Some(warm_seed_from_per(
                r.commodities.iter().map(|c| c.free_flow.clone()).collect(),
            )),
        })
    }

    fn induced(
        &self,
        leader: &[f64],
        leader_values: &[f64],
        fw: &FwOptions,
        seed: Option<&FwResult>,
    ) -> Result<InducedOutcome, SoptError> {
        let leader = EdgeFlow(leader.to_vec());
        let r = try_induced_multicommodity(self, &leader, leader_values, fw, seed)?;
        check_converged(&r, "induced")?;
        Ok(InducedOutcome {
            follower: r.flow.as_slice().to_vec(),
            result: Some(r),
        })
    }

    fn tolls(&self, optimum: &ModelProfile, fw: &FwOptions) -> Result<TollsReport, SoptError> {
        let opt = ModelProfile::require_flow(Some(optimum), "optimum")?;
        let t = try_marginal_cost_tolls_multi_with_optimum(self, opt)?;
        // The tolled equilibrium is the untolled optimum, commodity by
        // commodity — its per-commodity flows are the exact warm seed.
        let seed = warm_seed_from_per(opt.per_commodity.clone());
        let tolled_nash = try_multicommodity_nash(&t.tolled, fw, Some(&seed))?;
        check_converged(&tolled_nash, "tolled nash")?;
        Ok(TollsReport {
            tolled_cost: self.cost(tolled_nash.flow.as_slice()),
            tolled_nash: tolled_nash.flow.as_slice().to_vec(),
            tolls: t.tolls,
            optimum: t.optimum,
            revenue: t.revenue,
        })
    }

    fn llf(&self, _alpha: f64, _optimum: &ModelProfile) -> Result<LlfReport, SoptError> {
        Err(SoptError::Unsupported {
            task: Task::Llf,
            class: self.class(),
        })
    }

    fn pricing(
        &self,
        _options: &SolveOptions,
        _nash: Option<&ModelProfile>,
    ) -> Result<PricingReport, SoptError> {
        Err(SoptError::Unsupported {
            task: Task::Pricing,
            class: self.class(),
        })
    }

    fn anarchy_curve(
        &self,
        alphas: &[f64],
        strategy: CurveStrategy,
        fw: &FwOptions,
        optimum: &ModelProfile,
        nash: &ModelProfile,
    ) -> Result<CurveReport, SoptError> {
        let copts = CurveOptions {
            strategy,
            warm: true,
        };
        let c = anarchy_curve_multi_with(
            self,
            alphas,
            fw,
            &copts,
            ModelProfile::require_flow(Some(optimum), "optimum")?,
            ModelProfile::require_flow(Some(nash), "nash")?,
        )?;
        Ok(curve_report_from(&c, self.commodities()))
    }
}

#[cfg(test)]
mod tests {
    use super::super::scenario::Scenario;
    use super::*;

    fn model_of(spec: &str) -> Scenario {
        Scenario::parse(spec).unwrap()
    }

    #[test]
    fn profiles_expose_class_appropriate_views() {
        let sc = model_of("x, 1.0");
        let p = sc
            .model()
            .solve_profile(EqKind::Nash, &FwOptions::default())
            .unwrap();
        assert!(p.level().is_some());
        assert!(p.flow_result().is_none());
        assert!((p.flows().iter().sum::<f64>() - 1.0).abs() < 1e-9);

        let sc = model_of("nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0");
        let p = sc
            .model()
            .solve_profile(EqKind::Optimum, &FwOptions::default())
            .unwrap();
        assert!(p.level().is_none());
        assert!(p.flow_result().is_some());
        assert!((p.flows()[0] - 0.5).abs() < 1e-5);
    }

    #[test]
    fn beta_plans_agree_on_pigou_across_classes() {
        let fw = FwOptions::default();
        for spec in [
            "x, 1.0",
            "nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0",
            "nodes=4; 0->1: x; 0->1: 1.0; 2->3: x; 2->3: 1.0; \
             demand 0->1: 1.0; demand 2->3: 1.0",
        ] {
            let sc = model_of(spec);
            let model = sc.model();
            let optimum = model
                .plan_needs_optimum()
                .then(|| model.solve_profile(EqKind::Optimum, &fw).unwrap());
            let plan = model.beta_plan(optimum.as_ref()).unwrap();
            assert!(
                (plan.beta - 0.5).abs() < 1e-4,
                "'{spec}': β = {}",
                plan.beta
            );
            assert_eq!(plan.leader_values.len(), model.commodities());
            // The plan's controlled value matches β·r per commodity set.
            let controlled: f64 = plan.leader_values.iter().sum();
            let rate: f64 = plan.optimum.iter().sum::<f64>();
            assert!((controlled - plan.beta * rate).abs() < 1e-4, "'{spec}'");
        }
    }

    #[test]
    fn misusing_a_flow_plan_without_an_optimum_is_a_typed_error() {
        let sc = model_of("nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0");
        let err = sc.model().beta_plan(None).unwrap_err();
        assert!(
            matches!(
                err,
                SoptError::MissingParameter {
                    name: "optimum",
                    ..
                }
            ),
            "{err:?}"
        );
    }
}
