//! [`Report`] — the typed result of a [`super::Solve`] session, with
//! hand-rolled (offline-safe, no serde) JSON, CSV and text serializers.
//!
//! ## JSON schema
//!
//! Every report is one object:
//!
//! ```json
//! {
//!   "scenario": {"class": "parallel-links", "size": 2, "nodes": 2, "rate": 1},
//!   "task": "beta",
//!   …task-specific fields…
//! }
//! ```
//!
//! Task-specific fields (all numbers rounded to 12 significant digits;
//! non-finite values serialize as `null`):
//!
//! | task | fields |
//! |---|---|
//! | `beta` | `beta`, `nash_cost`, `optimum_cost`, `induced_cost`, `strategy[]`, `optimum[]`, `commodity_alphas[]` (multicommodity only) |
//! | `curve` | `beta`, `strategy` (`"strong"`\|`"weak"`), `weak_beta` (multicommodity only), `nash_cost`, `optimum_cost`, `points[{alpha,cost,ratio,oracle}]` |
//! | `equilib` | `nash_flows[]`, `nash_level?`, `nash_cost`, `optimum_flows[]`, `optimum_level?`, `optimum_cost` |
//! | `tolls` | `tolls[]`, `optimum[]`, `tolled_nash[]`, `tolled_cost`, `revenue` |
//! | `llf` | `alpha`, `strategy[]`, `cost`, `optimum_cost`, `ratio`, `bound` |
//! | `pricing` | `method`, `prices[]`, `flows[]`, `revenue`, `level?`, `sweep[{beta,revenue}]` |

use super::scenario::ScenarioClass;
use super::solve::Task;

/// What was solved: class, size, and demand of the scenario.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSummary {
    /// The instance class.
    pub class: ScenarioClass,
    /// The task that produced the report.
    pub task: Task,
    /// Links (parallel) or edges (network).
    pub size: usize,
    /// Vertices (2 for parallel links).
    pub nodes: usize,
    /// Total routed rate.
    pub rate: f64,
}

/// The β task: minimum Leader portion and its optimal strategy.
#[derive(Clone, Debug)]
pub struct BetaReport {
    /// The price of optimum `β`.
    pub beta: f64,
    /// `C(N)` — the cost without a Leader.
    pub nash_cost: f64,
    /// `C(O)` — the cost the strategy enforces.
    pub optimum_cost: f64,
    /// `C(S+T)` as actually induced by the computed strategy.
    pub induced_cost: f64,
    /// The Leader's strategy (per link, or per edge on networks).
    pub strategy: Vec<f64>,
    /// The optimum assignment.
    pub optimum: Vec<f64>,
    /// Per-commodity portions `α_i` (multicommodity scenarios only).
    pub commodity_alphas: Vec<f64>,
}

/// One sample of the anarchy-value curve.
#[derive(Clone, Debug)]
pub struct CurvePointReport {
    /// Leader portion α.
    pub alpha: f64,
    /// Best induced cost found at α.
    pub cost: f64,
    /// `C(S+T)/C(O)`.
    pub ratio: f64,
    /// Which oracle produced the point (`"exact"`, `"brute-force"`,
    /// `"heuristic-upper-bound"`).
    pub oracle: &'static str,
}

/// The curve task: `α ↦ ϱ(M, r, α)` (paper Expression (2)).
#[derive(Clone, Debug)]
pub struct CurveReport {
    /// The crossover portion to ratio 1 under the chosen strategy split:
    /// `β` of the instance (strong), or `max_i α_i` (weak, k-commodity).
    pub beta: f64,
    /// The weak crossover `max_i α_i` — reported on multicommodity
    /// scenarios only (single-commodity classes make it equal `beta`).
    pub weak_beta: Option<f64>,
    /// Which portion split produced the sweep (`"strong"` or `"weak"`).
    pub strategy: &'static str,
    /// `C(N)`.
    pub nash_cost: f64,
    /// `C(O)`.
    pub optimum_cost: f64,
    /// Samples in increasing α.
    pub points: Vec<CurvePointReport>,
}

/// The equilib task: Nash and optimum assignments side by side.
#[derive(Clone, Debug)]
pub struct EquilibReport {
    /// Nash flows (per link/edge).
    pub nash_flows: Vec<f64>,
    /// Common Nash latency `L_N` (parallel links only).
    pub nash_level: Option<f64>,
    /// `C(N)`.
    pub nash_cost: f64,
    /// Optimum flows.
    pub optimum_flows: Vec<f64>,
    /// Common optimum marginal cost (parallel links only).
    pub optimum_level: Option<f64>,
    /// `C(O)`.
    pub optimum_cost: f64,
}

/// The tolls task: marginal-cost pricing as the alternative mechanism.
#[derive(Clone, Debug)]
pub struct TollsReport {
    /// Per-link/edge tolls `τ = o·ℓ'(o)`.
    pub tolls: Vec<f64>,
    /// The untolled optimum (= tolled Nash flows).
    pub optimum: Vec<f64>,
    /// The tolled system's Nash flows (≈ optimum).
    pub tolled_nash: Vec<f64>,
    /// Latency cost of the tolled equilibrium (= `C(O)`).
    pub tolled_cost: f64,
    /// Total toll revenue extracted.
    pub revenue: f64,
}

/// The LLF task: the Largest-Latency-First baseline at portion α.
#[derive(Clone, Debug)]
pub struct LlfReport {
    /// The Leader portion.
    pub alpha: f64,
    /// The LLF strategy.
    pub strategy: Vec<f64>,
    /// Induced cost `C(S+T)`.
    pub cost: f64,
    /// `C(O)`.
    pub optimum_cost: f64,
    /// `C(S+T)/C(O)`.
    pub ratio: f64,
    /// The `1/α` guarantee ([41, Thm 6.4.4]).
    pub bound: f64,
}

/// One sample of the revenue-vs-β sweep: prices scaled to `β·p*`.
#[derive(Clone, Copy, Debug)]
pub struct PricingSweepPoint {
    /// Price scale factor β (1 at the computed equilibrium/optimum).
    pub beta: f64,
    /// Revenue extracted at β-scaled prices.
    pub revenue: f64,
}

/// The pricing task: competitive pricing Nash (parallel links) or the
/// single-price Stackelberg auction (networks with `[priceable]` edges).
#[derive(Clone, Debug)]
pub struct PricingReport {
    /// Which solver produced the prices (`"closed-form"`,
    /// `"best-response"`, `"single-price-auction"`).
    pub method: &'static str,
    /// Per-link/edge prices (0 on unpriced or priced-out links).
    pub prices: Vec<f64>,
    /// The flows the prices induce.
    pub flows: Vec<f64>,
    /// Total revenue `Σ t_e·f_e`.
    pub revenue: f64,
    /// The common tolled level (parallel links only).
    pub level: Option<f64>,
    /// Revenue at β-scaled prices, β on a grid over `[0, 2]`.
    pub sweep: Vec<PricingSweepPoint>,
}

/// Task-specific report payload.
#[derive(Clone, Debug)]
pub enum ReportData {
    /// Price of optimum (OpTop/MOP/Theorem 2.1).
    Beta(BetaReport),
    /// Anarchy-value curve.
    Curve(CurveReport),
    /// Nash and optimum assignments.
    Equilib(EquilibReport),
    /// Marginal-cost tolls.
    Tolls(TollsReport),
    /// LLF baseline.
    Llf(LlfReport),
    /// Competitive / Stackelberg pricing.
    Pricing(PricingReport),
}

impl ReportData {
    /// The beta payload, if this is a beta report.
    pub fn as_beta(&self) -> Option<&BetaReport> {
        match self {
            ReportData::Beta(b) => Some(b),
            _ => None,
        }
    }

    /// The curve payload, if this is a curve report.
    pub fn as_curve(&self) -> Option<&CurveReport> {
        match self {
            ReportData::Curve(c) => Some(c),
            _ => None,
        }
    }

    /// The equilib payload, if this is an equilib report.
    pub fn as_equilib(&self) -> Option<&EquilibReport> {
        match self {
            ReportData::Equilib(e) => Some(e),
            _ => None,
        }
    }

    /// The tolls payload, if this is a tolls report.
    pub fn as_tolls(&self) -> Option<&TollsReport> {
        match self {
            ReportData::Tolls(t) => Some(t),
            _ => None,
        }
    }

    /// The LLF payload, if this is an LLF report.
    pub fn as_llf(&self) -> Option<&LlfReport> {
        match self {
            ReportData::Llf(l) => Some(l),
            _ => None,
        }
    }

    /// The pricing payload, if this is a pricing report.
    pub fn as_pricing(&self) -> Option<&PricingReport> {
        match self {
            ReportData::Pricing(p) => Some(p),
            _ => None,
        }
    }
}

/// The structured outcome of one solve session.
#[derive(Clone, Debug)]
pub struct Report {
    /// What was solved.
    pub scenario: ScenarioSummary,
    /// The task-specific results.
    pub data: ReportData,
}

/// Serialize one JSON number: 12 significant digits (absorbing solver
/// noise like `0.4999999999999999`), shortest representation of the
/// rounded value, `null` for non-finite inputs.
pub(crate) fn json_num(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    // `{:.11e}` keeps 1 + 11 mantissa digits = 12 significant digits.
    let rounded: f64 = format!("{v:.11e}").parse().unwrap_or(v);
    if rounded == 0.0 {
        return "0".to_string(); // normalise -0
    }
    format!("{rounded}")
}

/// Escape a string into a quoted JSON string literal (quotes, backslashes,
/// and control characters). Used by every serializer here and by the CLI's
/// batch renderer for error objects.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_arr(vals: &[f64]) -> String {
    let parts: Vec<String> = vals.iter().map(|&v| json_num(v)).collect();
    format!("[{}]", parts.join(", "))
}

impl Report {
    /// Serialize to a JSON object (schema in the module docs).
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, String)> = vec![
            (
                "scenario".into(),
                format!(
                    "{{\"class\": {}, \"size\": {}, \"nodes\": {}, \"rate\": {}}}",
                    json_str(&self.scenario.class.to_string()),
                    self.scenario.size,
                    self.scenario.nodes,
                    json_num(self.scenario.rate)
                ),
            ),
            ("task".into(), json_str(self.scenario.task.name())),
        ];
        match &self.data {
            ReportData::Beta(b) => {
                fields.push(("beta".into(), json_num(b.beta)));
                fields.push(("nash_cost".into(), json_num(b.nash_cost)));
                fields.push(("optimum_cost".into(), json_num(b.optimum_cost)));
                fields.push(("induced_cost".into(), json_num(b.induced_cost)));
                fields.push(("strategy".into(), json_arr(&b.strategy)));
                fields.push(("optimum".into(), json_arr(&b.optimum)));
                if !b.commodity_alphas.is_empty() {
                    fields.push(("commodity_alphas".into(), json_arr(&b.commodity_alphas)));
                }
            }
            ReportData::Curve(c) => {
                fields.push(("beta".into(), json_num(c.beta)));
                if let Some(w) = c.weak_beta {
                    fields.push(("weak_beta".into(), json_num(w)));
                }
                fields.push(("strategy".into(), json_str(c.strategy)));
                fields.push(("nash_cost".into(), json_num(c.nash_cost)));
                fields.push(("optimum_cost".into(), json_num(c.optimum_cost)));
                let pts: Vec<String> = c
                    .points
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"alpha\": {}, \"cost\": {}, \"ratio\": {}, \"oracle\": {}}}",
                            json_num(p.alpha),
                            json_num(p.cost),
                            json_num(p.ratio),
                            json_str(p.oracle)
                        )
                    })
                    .collect();
                fields.push(("points".into(), format!("[{}]", pts.join(", "))));
            }
            ReportData::Equilib(e) => {
                fields.push(("nash_flows".into(), json_arr(&e.nash_flows)));
                if let Some(l) = e.nash_level {
                    fields.push(("nash_level".into(), json_num(l)));
                }
                fields.push(("nash_cost".into(), json_num(e.nash_cost)));
                fields.push(("optimum_flows".into(), json_arr(&e.optimum_flows)));
                if let Some(l) = e.optimum_level {
                    fields.push(("optimum_level".into(), json_num(l)));
                }
                fields.push(("optimum_cost".into(), json_num(e.optimum_cost)));
            }
            ReportData::Tolls(t) => {
                fields.push(("tolls".into(), json_arr(&t.tolls)));
                fields.push(("optimum".into(), json_arr(&t.optimum)));
                fields.push(("tolled_nash".into(), json_arr(&t.tolled_nash)));
                fields.push(("tolled_cost".into(), json_num(t.tolled_cost)));
                fields.push(("revenue".into(), json_num(t.revenue)));
            }
            ReportData::Llf(l) => {
                fields.push(("alpha".into(), json_num(l.alpha)));
                fields.push(("strategy".into(), json_arr(&l.strategy)));
                fields.push(("cost".into(), json_num(l.cost)));
                fields.push(("optimum_cost".into(), json_num(l.optimum_cost)));
                fields.push(("ratio".into(), json_num(l.ratio)));
                fields.push(("bound".into(), json_num(l.bound)));
            }
            ReportData::Pricing(p) => {
                fields.push(("method".into(), json_str(p.method)));
                fields.push(("prices".into(), json_arr(&p.prices)));
                fields.push(("flows".into(), json_arr(&p.flows)));
                fields.push(("revenue".into(), json_num(p.revenue)));
                if let Some(l) = p.level {
                    fields.push(("level".into(), json_num(l)));
                }
                let pts: Vec<String> = p
                    .sweep
                    .iter()
                    .map(|s| {
                        format!(
                            "{{\"beta\": {}, \"revenue\": {}}}",
                            json_num(s.beta),
                            json_num(s.revenue)
                        )
                    })
                    .collect();
                fields.push(("sweep".into(), format!("[{}]", pts.join(", "))));
            }
        }
        let body: Vec<String> = fields
            .into_iter()
            .map(|(k, v)| format!("{}: {v}", json_str(&k)))
            .collect();
        format!("{{{}}}", body.join(", "))
    }

    /// The CSV header matching [`Report::csv_rows`] for this task.
    pub fn csv_header(&self) -> String {
        match &self.data {
            ReportData::Beta(_) => {
                "class,size,rate,beta,nash_cost,optimum_cost,induced_cost,strategy".into()
            }
            ReportData::Curve(_) => "alpha,cost,ratio,oracle".into(),
            ReportData::Equilib(_) => "link,nash_flow,optimum_flow".into(),
            ReportData::Tolls(_) => "link,toll,optimum,tolled_nash".into(),
            ReportData::Llf(_) => "class,size,rate,alpha,cost,optimum_cost,ratio,bound".into(),
            ReportData::Pricing(_) => "link,price,flow".into(),
        }
    }

    /// The CSV data rows (no header). Flow vectors are `;`-joined inside
    /// one cell.
    pub fn csv_rows(&self) -> Vec<String> {
        let join =
            |v: &[f64]| -> String { v.iter().map(|&x| json_num(x)).collect::<Vec<_>>().join(";") };
        match &self.data {
            ReportData::Beta(b) => vec![format!(
                "{},{},{},{},{},{},{},{}",
                self.scenario.class,
                self.scenario.size,
                json_num(self.scenario.rate),
                json_num(b.beta),
                json_num(b.nash_cost),
                json_num(b.optimum_cost),
                json_num(b.induced_cost),
                join(&b.strategy)
            )],
            ReportData::Curve(c) => c
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{},{},{},{}",
                        json_num(p.alpha),
                        json_num(p.cost),
                        json_num(p.ratio),
                        p.oracle
                    )
                })
                .collect(),
            ReportData::Equilib(e) => (0..e.nash_flows.len())
                .map(|i| {
                    format!(
                        "{i},{},{}",
                        json_num(e.nash_flows[i]),
                        json_num(e.optimum_flows[i])
                    )
                })
                .collect(),
            ReportData::Tolls(t) => (0..t.tolls.len())
                .map(|i| {
                    format!(
                        "{i},{},{},{}",
                        json_num(t.tolls[i]),
                        json_num(t.optimum[i]),
                        json_num(t.tolled_nash[i])
                    )
                })
                .collect(),
            ReportData::Llf(l) => vec![format!(
                "{},{},{},{},{},{},{},{}",
                self.scenario.class,
                self.scenario.size,
                json_num(self.scenario.rate),
                json_num(l.alpha),
                json_num(l.cost),
                json_num(l.optimum_cost),
                json_num(l.ratio),
                json_num(l.bound)
            )],
            ReportData::Pricing(p) => (0..p.prices.len())
                .map(|i| format!("{i},{},{}", json_num(p.prices[i]), json_num(p.flows[i])))
                .collect(),
        }
    }

    /// Serialize to CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = self.csv_header();
        for row in self.csv_rows() {
            out.push('\n');
            out.push_str(&row);
        }
        out.push('\n');
        out
    }

    /// Human-readable rendering (the CLI's default; stable line formats
    /// for the classic `sopt beta`-style output).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        use std::fmt::Write;
        match &self.data {
            ReportData::Beta(b) => {
                let size_key = if self.scenario.class == ScenarioClass::Parallel {
                    "m"
                } else {
                    "edges"
                };
                let _ = writeln!(out, "{size_key:<8} = {}", self.scenario.size);
                let _ = writeln!(out, "rate     = {}", self.scenario.rate);
                let _ = writeln!(out, "C(N)     = {:.6}", b.nash_cost);
                let _ = writeln!(out, "C(O)     = {:.6}", b.optimum_cost);
                let _ = writeln!(out, "beta     = {:.6}", b.beta);
                let _ = writeln!(out, "strategy = {:?}", b.strategy);
                let _ = writeln!(out, "C(S+T)   = {:.6}", b.induced_cost);
                if !b.commodity_alphas.is_empty() {
                    let _ = writeln!(out, "alpha_i  = {:?}", b.commodity_alphas);
                }
            }
            ReportData::Curve(c) => {
                let _ = writeln!(
                    out,
                    "beta = {:.6}   C(N)/C(O) = {:.6}",
                    c.beta,
                    c.nash_cost / c.optimum_cost
                );
                // Multicommodity sweeps name the split; single-commodity
                // output stays byte-identical to the classic CLI.
                if let Some(w) = c.weak_beta {
                    let _ = writeln!(out, "strategy = {}   weak_beta = {w:.6}", c.strategy);
                }
                let _ = writeln!(
                    out,
                    "{:>8} {:>12} {:>10}  oracle",
                    "alpha", "C(S+T)", "ratio"
                );
                for p in &c.points {
                    // The classic CLI printed the oracle enum's Debug names
                    // (`Exact`, `BruteForce`, `HeuristicUpperBound`); keep
                    // the text column byte-identical (JSON/CSV use the
                    // kebab-case names).
                    let legacy_oracle = match p.oracle {
                        "exact" => "Exact",
                        "brute-force" => "BruteForce",
                        "heuristic-upper-bound" => "HeuristicUpperBound",
                        other => other,
                    };
                    let _ = writeln!(
                        out,
                        "{:>8.3} {:>12.6} {:>10.6}  {legacy_oracle}",
                        p.alpha, p.cost, p.ratio
                    );
                }
            }
            // Vectors print with Debug (`{:?}`) throughout: the classic
            // `sopt equilib`/`tolls` output used it, and scripts parse it.
            ReportData::Equilib(e) => {
                match e.nash_level {
                    Some(l) => {
                        let _ = writeln!(out, "Nash    (latency {:.6}): {:?}", l, e.nash_flows);
                    }
                    None => {
                        let _ = writeln!(out, "Nash    : {:?}", e.nash_flows);
                    }
                }
                match e.optimum_level {
                    Some(l) => {
                        let _ = writeln!(out, "Optimum (marginal {:.6}): {:?}", l, e.optimum_flows);
                    }
                    None => {
                        let _ = writeln!(out, "Optimum : {:?}", e.optimum_flows);
                    }
                }
                let _ = writeln!(
                    out,
                    "C(N) = {:.6}   C(O) = {:.6}",
                    e.nash_cost, e.optimum_cost
                );
            }
            ReportData::Tolls(t) => {
                let _ = writeln!(out, "tolls    = {:?}", t.tolls);
                let _ = writeln!(out, "optimum  = {:?}", t.optimum);
                let _ = writeln!(out, "revenue  = {:.6}", t.revenue);
                let _ = writeln!(out, "tolled Nash = {:?} (≈ optimum)", t.tolled_nash);
            }
            ReportData::Llf(l) => {
                let _ = writeln!(out, "strategy = {:?}", l.strategy);
                let _ = writeln!(
                    out,
                    "C(S+T)   = {:.6}   C(O) = {:.6}   ratio = {:.6}",
                    l.cost, l.optimum_cost, l.ratio
                );
                let _ = writeln!(out, "bound 1/alpha = {:.6}", l.bound);
            }
            ReportData::Pricing(p) => {
                let _ = writeln!(out, "method   = {}", p.method);
                let _ = writeln!(out, "prices   = {:?}", p.prices);
                let _ = writeln!(out, "flows    = {:?}", p.flows);
                match p.level {
                    Some(l) => {
                        let _ = writeln!(out, "revenue  = {:.6}   level = {l:.6}", p.revenue);
                    }
                    None => {
                        let _ = writeln!(out, "revenue  = {:.6}", p.revenue);
                    }
                }
                if !p.sweep.is_empty() {
                    let _ = writeln!(out, "{:>8} {:>12}", "beta", "revenue");
                    for s in &p.sweep {
                        let _ = writeln!(out, "{:>8.3} {:>12.6}", s.beta, s.revenue);
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_text())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_num_absorbs_solver_noise() {
        // Exactly 12 significant digits, as the schema documents.
        assert_eq!(json_num(0.123456789012345), "0.123456789012");
        assert_eq!(json_num(0.4999999999999999), "0.5");
        assert_eq!(json_num(0.5000000000000002), "0.5");
        assert_eq!(json_num(1.0), "1");
        assert_eq!(json_num(0.75), "0.75");
        assert_eq!(json_num(-0.0), "0");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn beta_json_has_the_headline_key() {
        let r = Report {
            scenario: ScenarioSummary {
                class: ScenarioClass::Parallel,
                task: Task::Beta,
                size: 2,
                nodes: 2,
                rate: 1.0,
            },
            data: ReportData::Beta(BetaReport {
                beta: 0.4999999999999999,
                nash_cost: 1.0,
                optimum_cost: 0.75,
                induced_cost: 0.75,
                strategy: vec![0.0, 0.5],
                optimum: vec![0.5, 0.5],
                commodity_alphas: vec![],
            }),
        };
        let j = r.to_json();
        assert!(j.contains("\"beta\": 0.5"), "{j}");
        assert!(j.contains("\"task\": \"beta\""), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
        // Text keeps the classic CLI line format.
        assert!(r.to_text().contains("beta     = 0.500000"));
        // CSV has one data row.
        assert_eq!(r.csv_rows().len(), 1);
    }
}
