//! [`Scenario`] — one type for every instance class the paper treats.

use sopt_equilibrium::parallel::ParallelLinks;
use sopt_network::instance::{Commodity, MultiCommodityInstance, NetworkInstance};

use super::error::SoptError;
use super::model::ScenarioModel;
use super::solve::Solve;
use crate::spec;

/// Which of the paper's three instance classes a [`Scenario`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioClass {
    /// Parallel links `(M, r)` (paper §4, OpTop).
    Parallel,
    /// A single-commodity s–t network `(G, r)` (MOP, Corollary 2.3).
    Network,
    /// A k-commodity network (Theorem 2.1).
    Multi,
}

impl std::fmt::Display for ScenarioClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScenarioClass::Parallel => "parallel-links",
            ScenarioClass::Network => "network",
            ScenarioClass::Multi => "multicommodity",
        })
    }
}

/// A routing scenario: any of the three instance classes, ready to
/// [`solve`](Scenario::solve).
///
/// Construct one from Rust values (`Scenario::from(links)`) or parse one
/// from the spec language ([`Scenario::parse`]) — both the parallel-links
/// mini-language (`"x, 1.0"`, optionally `"x, 1.0 @ 2"`) and the
/// general-network grammar
/// (`"nodes=4; 0->1: x; …; demand 0->3: 2.0"`, see [`crate::spec`]).
///
/// ```
/// use stackopt::api::{Scenario, Task};
///
/// let report = Scenario::parse("x, 1.0")?.solve().task(Task::Beta).run()?;
/// assert!((report.data.as_beta().unwrap().beta - 0.5).abs() < 1e-9);
/// # Ok::<(), stackopt::api::SoptError>(())
/// ```
#[derive(Clone, Debug)]
pub enum Scenario {
    /// Parallel links `(M, r)`.
    Parallel(ParallelLinks),
    /// A single-commodity s–t network.
    Network(NetworkInstance),
    /// A k-commodity network.
    Multi(MultiCommodityInstance),
}

impl From<ParallelLinks> for Scenario {
    fn from(links: ParallelLinks) -> Self {
        Scenario::Parallel(links)
    }
}

impl From<NetworkInstance> for Scenario {
    fn from(inst: NetworkInstance) -> Self {
        Scenario::Network(inst)
    }
}

impl From<MultiCommodityInstance> for Scenario {
    fn from(inst: MultiCommodityInstance) -> Self {
        Scenario::Multi(inst)
    }
}

impl std::str::FromStr for Scenario {
    type Err = SoptError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scenario::parse(s)
    }
}

impl Scenario {
    /// Parse either grammar of the spec language (auto-detected: network
    /// specs contain `nodes=…;` statements). One `demand` line yields a
    /// [`Scenario::Network`], several a [`Scenario::Multi`].
    pub fn parse(input: &str) -> Result<Self, SoptError> {
        let trimmed = input.trim();
        if trimmed.is_empty() {
            return Err(SoptError::EmptyScenario);
        }
        if spec::is_network_spec(trimmed) {
            let net = spec::parse_network(trimmed)?;
            if net.commodities.len() == 1 {
                let c = net.commodities[0];
                Ok(Scenario::Network(
                    NetworkInstance::new(net.graph, net.latencies, c.source, c.sink, c.rate)
                        .with_priceable(net.priceable),
                ))
            } else {
                Ok(Scenario::Multi(MultiCommodityInstance::new(
                    net.graph,
                    net.latencies,
                    net.commodities,
                )))
            }
        } else {
            let (lats, rate) = spec::parse_parallel(trimmed)?;
            Ok(Scenario::Parallel(ParallelLinks::new(lats, rate)))
        }
    }

    /// Start a [`Solve`] session on this scenario.
    pub fn solve(self) -> Solve {
        Solve::new(self)
    }

    /// The class-polymorphic model behind this scenario — the single
    /// per-class dispatch point of the session layer; every task driver and
    /// the engine's profile memo work against the returned trait object.
    pub fn model(&self) -> &dyn ScenarioModel {
        match self {
            Scenario::Parallel(links) => links,
            Scenario::Network(inst) => inst,
            Scenario::Multi(inst) => inst,
        }
    }

    /// The instance class.
    pub fn class(&self) -> ScenarioClass {
        self.model().class()
    }

    /// Number of links/edges.
    pub fn size(&self) -> usize {
        match self {
            Scenario::Parallel(l) => l.m(),
            Scenario::Network(n) => n.num_edges(),
            Scenario::Multi(m) => m.graph.num_edges(),
        }
    }

    /// Number of vertices (2 for parallel links, modelled as s and t).
    pub fn nodes(&self) -> usize {
        match self {
            Scenario::Parallel(_) => 2,
            Scenario::Network(n) => n.graph.num_nodes(),
            Scenario::Multi(m) => m.graph.num_nodes(),
        }
    }

    /// Total routed rate (summed over commodities).
    pub fn rate(&self) -> f64 {
        match self {
            Scenario::Parallel(l) => l.rate(),
            Scenario::Network(n) => n.rate,
            Scenario::Multi(m) => m.total_rate(),
        }
    }

    /// The same scenario with a different total rate. Errors on
    /// nonpositive rates and on multicommodity scenarios (whose per-demand
    /// rates live in the spec).
    pub fn with_rate(self, rate: f64) -> Result<Self, SoptError> {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(SoptError::InvalidParameter {
                name: "rate",
                value: rate,
                reason: "must be finite and > 0",
            });
        }
        match self {
            Scenario::Parallel(l) => Ok(Scenario::Parallel(l.with_rate(rate))),
            Scenario::Network(n) => {
                let priceable = n.priceable.clone();
                Ok(Scenario::Network(
                    NetworkInstance::new(n.graph, n.latencies, n.source, n.sink, rate)
                        .with_priceable(priceable),
                ))
            }
            Scenario::Multi(_) => Err(SoptError::InvalidParameter {
                name: "rate",
                value: rate,
                reason: "multicommodity rates are per demand; set them in the spec",
            }),
        }
    }

    /// Format the scenario back into the spec language. Inverse of
    /// [`Scenario::parse`]; errors with [`SoptError::Unrepresentable`]
    /// when a latency family has no spec syntax (piecewise, general
    /// polynomials, shifted forms).
    pub fn to_spec(&self) -> Result<String, SoptError> {
        let fmt_lat = |i: usize, l: &sopt_latency::LatencyFn| {
            spec::format_latency(l).ok_or_else(|| SoptError::Unrepresentable {
                what: format!("latency {i} ({l:?})"),
            })
        };
        match self {
            Scenario::Parallel(links) => {
                let parts: Result<Vec<String>, SoptError> = links
                    .latencies()
                    .iter()
                    .enumerate()
                    .map(|(i, l)| fmt_lat(i, l))
                    .collect();
                let mut out = parts?.join(", ");
                if links.rate() != 1.0 {
                    out.push_str(&format!(" @ {}", links.rate()));
                }
                Ok(out)
            }
            // Network is the single-commodity special case of the same
            // serialization.
            Scenario::Network(inst) => network_spec_string(
                &inst.graph,
                &inst.latencies,
                &[Commodity {
                    source: inst.source,
                    sink: inst.sink,
                    rate: inst.rate,
                }],
                &inst.priceable,
                &fmt_lat,
            ),
            Scenario::Multi(inst) => network_spec_string(
                &inst.graph,
                &inst.latencies,
                &inst.commodities,
                &[],
                &fmt_lat,
            ),
        }
    }
}

/// Serialize the network grammar: `nodes=N; A->B: expr; …; demand A->B: r`,
/// with ` [priceable]` suffixes for edges marked in `priceable`.
fn network_spec_string(
    graph: &sopt_network::graph::DiGraph,
    latencies: &[sopt_latency::LatencyFn],
    commodities: &[Commodity],
    priceable: &[bool],
    fmt_lat: &dyn Fn(usize, &sopt_latency::LatencyFn) -> Result<String, SoptError>,
) -> Result<String, SoptError> {
    let mut out = format!("nodes={}", graph.num_nodes());
    for (i, (e, lat)) in graph.edges().iter().zip(latencies).enumerate() {
        out.push_str(&format!("; {}->{}: {}", e.from.0, e.to.0, fmt_lat(i, lat)?));
        if priceable.get(i).copied().unwrap_or(false) {
            out.push_str(" [priceable]");
        }
    }
    for c in commodities {
        out.push_str(&format!(
            "; demand {}->{}: {}",
            c.source.0, c.sink.0, c.rate
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sopt_latency::LatencyFn;

    #[test]
    fn parse_detects_the_grammar() {
        assert_eq!(
            Scenario::parse("x, 1.0").unwrap().class(),
            ScenarioClass::Parallel
        );
        assert_eq!(
            Scenario::parse("nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0")
                .unwrap()
                .class(),
            ScenarioClass::Network
        );
        assert_eq!(
            Scenario::parse(
                "nodes=4; 0->1: x; 0->1: 1.0; 2->3: x; 2->3: 1.0; \
                 demand 0->1: 1.0; demand 2->3: 1.0"
            )
            .unwrap()
            .class(),
            ScenarioClass::Multi
        );
        assert_eq!(Scenario::parse("  ").unwrap_err(), SoptError::EmptyScenario);
    }

    #[test]
    fn accessors_cover_all_classes() {
        let p = Scenario::parse("x, 1.0, mm1:2 @ 2").unwrap();
        assert_eq!(p.size(), 3);
        assert_eq!(p.nodes(), 2);
        assert_eq!(p.rate(), 2.0);
        let n = Scenario::parse("nodes=3; 0->1: x; 1->2: x; demand 0->2: 1.5").unwrap();
        assert_eq!(n.size(), 2);
        assert_eq!(n.nodes(), 3);
        assert_eq!(n.rate(), 1.5);
    }

    #[test]
    fn spec_round_trips_for_all_classes() {
        for s in [
            "x, 1",
            "x, 1 @ 2",
            "2x+0.3, x^3+0.5, mm1:2, bpr:1,0.15,10,4",
            "nodes=2; 0->1: x; 0->1: 1; demand 0->1: 1",
            "nodes=4; 0->1: x; 1->3: 1; 0->2: 1; 2->3: x; demand 0->3: 1",
            "nodes=4; 0->1: x; 0->1: 1; 2->3: x; 2->3: 1; demand 0->1: 1; demand 2->3: 1",
            "nodes=3; 0->1: x [priceable]; 1->2: 2x+0.3; demand 0->2: 1",
        ] {
            let spec1 = Scenario::parse(s).unwrap().to_spec().unwrap();
            let spec2 = Scenario::parse(&spec1).unwrap().to_spec().unwrap();
            assert_eq!(spec1, spec2, "'{s}'");
        }
    }

    #[test]
    fn unrepresentable_latencies_error_in_to_spec() {
        let links = ParallelLinks::new(vec![LatencyFn::piecewise(0.1, &[(0.0, 1.0)])], 1.0);
        match Scenario::from(links).to_spec() {
            Err(SoptError::Unrepresentable { what }) => assert!(what.contains("latency 0")),
            other => panic!("expected Unrepresentable, got {other:?}"),
        }
    }

    #[test]
    fn with_rate_rebuilds_parallel_and_network() {
        let p = Scenario::parse("x, 1.0").unwrap().with_rate(3.0).unwrap();
        assert_eq!(p.rate(), 3.0);
        let n = Scenario::parse("nodes=2; 0->1: x; 0->1: 1; demand 0->1: 1")
            .unwrap()
            .with_rate(2.0)
            .unwrap();
        assert_eq!(n.rate(), 2.0);
        let m = Scenario::parse(
            "nodes=4; 0->1: x; 0->1: 1; 2->3: x; 2->3: 1; demand 0->1: 1; demand 2->3: 1",
        )
        .unwrap();
        assert!(m.with_rate(2.0).is_err());
        assert!(Scenario::parse("x").unwrap().with_rate(0.0).is_err());
    }
}
