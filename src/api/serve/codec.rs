//! The serve wire codec: one typed [`Request`]/[`Response`] envelope.
//!
//! This is the *single* JSONL schema of the project — `sopt serve` speaks
//! it on its socket/pipe, `sopt batch --stream` emits its response side,
//! and the public submission API ([`Server`](super::Server),
//! [`Server::run_requests`](super::Server::run_requests)) consumes the
//! typed structs directly. Before this module, CLI flags, `Batch` fields
//! and the ad-hoc stream JSONL each declared their own knob set; now they
//! are all views of [`Request`].
//!
//! ## Request schema (one JSON object per line)
//!
//! ```json
//! {"v": 1, "id": "r1", "kind": "solve", "spec": "x, 1.0", "task": "beta",
//!  "rate": 2.0, "alpha": 0.5, "steps": 10, "tolerance": 1e-9,
//!  "max_iters": 2000, "strategy": "strong",
//!  "priority": 5, "deadline_ms": 1000, "index": 0}
//! ```
//!
//! * `v` (required) — protocol version, must be `1`.
//! * `id` (required) — string or integer, echoed verbatim in the response.
//! * `kind` — `"solve"` (default), `"stats"`, `"metrics"`, or `"cancel"`.
//! * `spec` — scenario spec (required for `solve`; both grammars).
//! * `task`/`rate`/`alpha`/`steps`/`tolerance`/`max_iters`/`strategy`/
//!   `price_steps`/`price_rounds`/`aon` — per-request solve knobs
//!   overriding the server's defaults.
//! * `target` — the id of the solve a `cancel` withdraws (required for
//!   `cancel`, invalid elsewhere). The cancel is acked immediately with
//!   `{"status": "cancelled", "target": …}`; the withdrawn solve, if
//!   still queued when a worker reaches it, is answered
//!   `{"status": "dropped", …}` and counted in the `cancelled` stat.
//! * `priority` — integer, higher pops first (default 0; FIFO within ties).
//! * `deadline_ms` — budget from receipt; a request still queued when it
//!   expires is answered `dropped`, never silently lost.
//! * `index` — optional input position, echoed back (the `batch --stream`
//!   alias).
//!
//! Unknown keys are rejected (typed error response), so client typos fail
//! loudly instead of silently solving with default knobs.
//!
//! ## Response schema
//!
//! ```json
//! {"v": 1, "id": "r1", "index": 0, "status": "ok", "report": {…}}
//! {"v": 1, "id": "r1", "status": "err", "error": "cannot parse …"}
//! {"v": 1, "id": "r1", "status": "dropped", "reason": "deadline …"}
//! {"v": 1, "id": "c1", "status": "cancelled", "target": "r1"}
//! {"v": 1, "id": "s", "status": "stats", "stats": {…, "disk_hits": 2,
//!  "uptime_ms": 1234, "queue_depth": 0}}
//! {"v": 1, "id": "m", "status": "metrics", "metrics": {"phases":
//!  {"solve_latency": {"count": 9, "p50_us": 180, …, "buckets": [[160, 5],
//!  [192, 4]]}, …}, "counters": {"fw_iterations": 120, …}}}
//! ```
//!
//! An `ok` response from a metrics-enabled server additionally carries
//! `"elapsed_us"` and `"fw_iters"` (see
//! [`EngineBuilder::metrics`](super::super::engine::EngineBuilder::metrics)).
//!
//! Malformed input never panics and never skips an id: a line that parses
//! as JSON but fails validation echoes its `id` back in the error
//! response; a line that is not JSON at all gets `"id": null`.

use sopt_core::curve::CurveStrategy;
use sopt_solver::AonMode;

use super::super::engine::EngineStats;
use super::super::error::SoptError;
use super::super::report::{json_str, Report};
use super::super::solve::{SolveOptions, Task};

// ---------------------------------------------------------------------------
// A minimal JSON value parser (no serde — the project is offline-safe).

/// A parsed JSON value. Only what the envelope needs: numbers are `f64`
/// (ids keep integer fidelity via [`RequestId`]), objects preserve key
/// order for error messages.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn fail<T>(&self, reason: &str) -> Result<T, SoptError> {
        Err(SoptError::Parse {
            token: format!("byte {}", self.pos),
            reason: format!("json: {reason}"),
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\r' || b == b'\n' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_lit(&mut self, lit: &str) -> Result<(), SoptError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            self.fail(&format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<Json, SoptError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => {
                self.expect_lit("true")?;
                Ok(Json::Bool(true))
            }
            Some(b'f') => {
                self.expect_lit("false")?;
                Ok(Json::Bool(false))
            }
            Some(b'n') => {
                self.expect_lit("null")?;
                Ok(Json::Null)
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(_) => self.fail("unexpected character"),
            None => self.fail("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Json, SoptError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return self.fail("expected ':' after object key");
            }
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            return self.fail("expected ',' or '}' in object");
        }
    }

    fn array(&mut self) -> Result<Json, SoptError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            return self.fail("expected ',' or ']' in array");
        }
    }

    fn string(&mut self) -> Result<String, SoptError> {
        if !self.eat(b'"') {
            return self.fail("expected string");
        }
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.fail("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.fail("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.fail("bad \\u escape");
                            };
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than
                            // combined — the envelope never emits them.
                            let Some(c) = char::from_u32(code) else {
                                return self.fail("\\u escape is not a scalar value");
                            };
                            out.push(c);
                        }
                        _ => return self.fail("unknown escape"),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    if width == 0 || start + width > self.bytes.len() {
                        return self.fail("invalid utf-8 in string");
                    }
                    self.pos = start + width;
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.fail("invalid utf-8 in string"),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, SoptError> {
        let start = self.pos;
        self.eat(b'-');
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => self.fail("invalid number"),
        }
    }
}

const fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        0xf0..=0xf7 => 4,
        _ => 0,
    }
}

/// Parses one JSON value; trailing non-whitespace is an error.
pub(crate) fn parse_json(s: &str) -> Result<Json, SoptError> {
    let mut p = Parser::new(s);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.fail("trailing characters after value");
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Request side.

/// A request id: a JSON string or integer, echoed verbatim.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum RequestId {
    /// A string id.
    Str(String),
    /// An integer id.
    Num(i64),
}

impl RequestId {
    fn to_json(&self) -> String {
        match self {
            RequestId::Str(s) => json_str(s),
            RequestId::Num(n) => n.to_string(),
        }
    }
}

impl From<&str> for RequestId {
    fn from(s: &str) -> Self {
        RequestId::Str(s.to_string())
    }
}

impl From<i64> for RequestId {
    fn from(n: i64) -> Self {
        RequestId::Num(n)
    }
}

/// The solve payload of a [`Request`]: a spec plus per-request knob
/// overrides (unset knobs inherit the server's defaults).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct SolveRequest {
    /// Scenario spec (either grammar).
    pub spec: String,
    /// Task override.
    pub task: Option<Task>,
    /// Routed-rate override (applied via `Scenario::with_rate`).
    pub rate: Option<f64>,
    /// Leader portion (LLF).
    pub alpha: Option<f64>,
    /// Curve sample count.
    pub steps: Option<usize>,
    /// Convergence target.
    pub tolerance: Option<f64>,
    /// Iteration cap.
    pub max_iters: Option<usize>,
    /// Weak/strong curve split.
    pub strategy: Option<CurveStrategy>,
    /// Pricing grid resolution (candidate count / best-response grid).
    pub price_steps: Option<usize>,
    /// Pricing best-response round budget.
    pub price_rounds: Option<usize>,
    /// Multi-commodity all-or-nothing strategy.
    pub aon: Option<AonMode>,
}

impl SolveRequest {
    /// The request's effective knob set: the server defaults with every
    /// set field overridden.
    pub(crate) fn options_over(&self, base: &SolveOptions) -> SolveOptions {
        let mut o = base.clone();
        if let Some(t) = self.task {
            o.task = t;
        }
        if let Some(a) = self.alpha {
            o.alpha = Some(a);
        }
        if let Some(s) = self.steps {
            o.steps = s;
        }
        if let Some(t) = self.tolerance {
            o.tolerance = t;
        }
        if let Some(k) = self.max_iters {
            o.max_iters = k;
        }
        if let Some(st) = self.strategy {
            o.strategy = st;
        }
        if let Some(p) = self.price_steps {
            o.price_steps = p;
        }
        if let Some(p) = self.price_rounds {
            o.price_rounds = p;
        }
        if let Some(a) = self.aon {
            o.aon = a;
        }
        o
    }
}

/// What a request asks for.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestKind {
    /// Solve one scenario.
    Solve(SolveRequest),
    /// Report the server's [`EngineStats`] snapshot.
    Stats,
    /// Report the server's metrics recorder snapshot: per-phase latency
    /// histograms (bucket arrays plus p50/p90/p99) and solver counters.
    /// Empty unless the server was built with metrics enabled.
    Metrics,
    /// Withdraw a queued solve by its id. The ack answers immediately;
    /// the withdrawn solve (if it is still queued when a worker reaches
    /// it) is answered `dropped` and counted in `cancelled`. Cancels ride
    /// the same priority queue as solves — submit them at a higher
    /// priority to overtake the work they withdraw.
    Cancel {
        /// The id of the solve to withdraw.
        target: RequestId,
    },
}

/// One line of the serve protocol: the typed request envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Client-chosen id, echoed in the response.
    pub id: RequestId,
    /// Solve or stats.
    pub kind: RequestKind,
    /// Scheduling priority: higher pops first, FIFO within ties
    /// (default 0).
    pub priority: i64,
    /// Time budget in milliseconds from receipt; expired requests are
    /// answered `dropped` (under the default shed policy).
    pub deadline_ms: Option<u64>,
    /// Optional input position, echoed back (`batch --stream` sets it).
    pub index: Option<usize>,
}

impl Request {
    /// A solve request with default scheduling fields.
    pub fn solve(id: impl Into<RequestId>, solve: SolveRequest) -> Self {
        Request {
            id: id.into(),
            kind: RequestKind::Solve(solve),
            priority: 0,
            deadline_ms: None,
            index: None,
        }
    }

    /// A stats request.
    pub fn stats(id: impl Into<RequestId>) -> Self {
        Request {
            id: id.into(),
            kind: RequestKind::Stats,
            priority: 0,
            deadline_ms: None,
            index: None,
        }
    }

    /// A metrics request.
    pub fn metrics(id: impl Into<RequestId>) -> Self {
        Request {
            id: id.into(),
            kind: RequestKind::Metrics,
            priority: 0,
            deadline_ms: None,
            index: None,
        }
    }

    /// A cancel request withdrawing the solve whose id is `target`.
    pub fn cancel(id: impl Into<RequestId>, target: impl Into<RequestId>) -> Self {
        Request {
            id: id.into(),
            kind: RequestKind::Cancel {
                target: target.into(),
            },
            priority: 0,
            deadline_ms: None,
            index: None,
        }
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            "\"v\": 1".to_string(),
            format!("\"id\": {}", self.id.to_json()),
        ];
        match &self.kind {
            RequestKind::Stats => fields.push("\"kind\": \"stats\"".to_string()),
            RequestKind::Metrics => fields.push("\"kind\": \"metrics\"".to_string()),
            RequestKind::Cancel { target } => {
                fields.push("\"kind\": \"cancel\"".to_string());
                fields.push(format!("\"target\": {}", target.to_json()));
            }
            RequestKind::Solve(s) => {
                fields.push("\"kind\": \"solve\"".to_string());
                fields.push(format!("\"spec\": {}", json_str(&s.spec)));
                if let Some(t) = s.task {
                    fields.push(format!("\"task\": {}", json_str(t.name())));
                }
                if let Some(r) = s.rate {
                    fields.push(format!("\"rate\": {}", fmt_f64(r)));
                }
                if let Some(a) = s.alpha {
                    fields.push(format!("\"alpha\": {}", fmt_f64(a)));
                }
                if let Some(n) = s.steps {
                    fields.push(format!("\"steps\": {n}"));
                }
                if let Some(t) = s.tolerance {
                    fields.push(format!("\"tolerance\": {}", fmt_f64(t)));
                }
                if let Some(k) = s.max_iters {
                    fields.push(format!("\"max_iters\": {k}"));
                }
                if let Some(st) = s.strategy {
                    fields.push(format!("\"strategy\": {}", json_str(st.name())));
                }
                if let Some(p) = s.price_steps {
                    fields.push(format!("\"price_steps\": {p}"));
                }
                if let Some(p) = s.price_rounds {
                    fields.push(format!("\"price_rounds\": {p}"));
                }
                if let Some(a) = s.aon {
                    fields.push(format!("\"aon\": {}", json_str(a.name())));
                }
            }
        }
        if self.priority != 0 {
            fields.push(format!("\"priority\": {}", self.priority));
        }
        if let Some(d) = self.deadline_ms {
            fields.push(format!("\"deadline_ms\": {d}"));
        }
        if let Some(i) = self.index {
            fields.push(format!("\"index\": {i}"));
        }
        format!("{{{}}}", fields.join(", "))
    }

    /// Parses one JSONL line. On failure the rejection carries the id when
    /// it could be recovered from the line, so the error response still
    /// echoes it — no id is ever silently skipped.
    pub fn parse(line: &str) -> Result<Request, Rejection> {
        let json = parse_json(line).map_err(|error| Rejection { id: None, error })?;
        let Json::Obj(fields) = json else {
            return Err(Rejection {
                id: None,
                error: SoptError::Parse {
                    token: truncate(line),
                    reason: "request must be a JSON object".into(),
                },
            });
        };
        // Recover the id first so every later rejection can echo it.
        let id = fields
            .iter()
            .find(|(k, _)| k == "id")
            .and_then(|(_, v)| id_of(v));
        let reject = |reason: String| Rejection {
            id: id.clone(),
            error: SoptError::Parse {
                token: truncate(line),
                reason,
            },
        };

        let mut v = None;
        let mut kind_name: Option<String> = None;
        let mut solve = SolveRequest::default();
        let mut spec_set = false;
        let mut target: Option<RequestId> = None;
        let mut priority = 0i64;
        let mut deadline_ms = None;
        let mut index = None;
        let mut id_field = None;
        for (key, val) in &fields {
            match key.as_str() {
                "v" => {
                    v = Some(int_of(val).ok_or_else(|| reject("'v' must be an integer".into()))?)
                }
                "id" => {
                    id_field = Some(
                        id_of(val)
                            .ok_or_else(|| reject("'id' must be a string or integer".into()))?,
                    )
                }
                "kind" => {
                    kind_name = Some(
                        str_of(val)
                            .ok_or_else(|| reject("'kind' must be a string".into()))?
                            .to_string(),
                    )
                }
                "spec" => {
                    solve.spec = str_of(val)
                        .ok_or_else(|| reject("'spec' must be a string".into()))?
                        .to_string();
                    spec_set = true;
                }
                "task" => {
                    let name =
                        str_of(val).ok_or_else(|| reject("'task' must be a string".into()))?;
                    solve.task = Some(name.parse::<Task>().map_err(|e| reject(e.to_string()))?);
                }
                "rate" => {
                    solve.rate =
                        Some(num_of(val).ok_or_else(|| reject("'rate' must be a number".into()))?)
                }
                "alpha" => {
                    solve.alpha =
                        Some(num_of(val).ok_or_else(|| reject("'alpha' must be a number".into()))?)
                }
                "steps" => {
                    solve.steps =
                        Some(uint_of(val).ok_or_else(|| {
                            reject("'steps' must be a non-negative integer".into())
                        })? as usize)
                }
                "tolerance" => {
                    solve.tolerance = Some(
                        num_of(val).ok_or_else(|| reject("'tolerance' must be a number".into()))?,
                    )
                }
                "max_iters" => {
                    solve.max_iters = Some(uint_of(val).ok_or_else(|| {
                        reject("'max_iters' must be a non-negative integer".into())
                    })? as usize)
                }
                "strategy" => {
                    let name =
                        str_of(val).ok_or_else(|| reject("'strategy' must be a string".into()))?;
                    solve.strategy = Some(
                        CurveStrategy::from_name(name)
                            .ok_or_else(|| reject(format!("unknown strategy '{name}'")))?,
                    );
                }
                "price_steps" => {
                    solve.price_steps = Some(uint_of(val).ok_or_else(|| {
                        reject("'price_steps' must be a non-negative integer".into())
                    })? as usize)
                }
                "price_rounds" => {
                    solve.price_rounds = Some(uint_of(val).ok_or_else(|| {
                        reject("'price_rounds' must be a non-negative integer".into())
                    })? as usize)
                }
                "aon" => {
                    let name =
                        str_of(val).ok_or_else(|| reject("'aon' must be a string".into()))?;
                    solve.aon = Some(
                        AonMode::from_name(name)
                            .ok_or_else(|| reject(format!("unknown aon mode '{name}'")))?,
                    );
                }
                "target" => {
                    target = Some(
                        id_of(val)
                            .ok_or_else(|| reject("'target' must be a string or integer".into()))?,
                    )
                }
                "priority" => {
                    priority =
                        int_of(val).ok_or_else(|| reject("'priority' must be an integer".into()))?
                }
                "deadline_ms" => {
                    deadline_ms = Some(uint_of(val).ok_or_else(|| {
                        reject("'deadline_ms' must be a non-negative integer".into())
                    })?)
                }
                "index" => {
                    index =
                        Some(uint_of(val).ok_or_else(|| {
                            reject("'index' must be a non-negative integer".into())
                        })? as usize)
                }
                other => return Err(reject(format!("unknown key '{other}'"))),
            }
        }
        match v {
            Some(1) => {}
            Some(other) => return Err(reject(format!("unsupported protocol version {other}"))),
            None => return Err(reject("missing required key 'v'".into())),
        }
        let Some(id) = id_field else {
            return Err(reject("missing required key 'id'".into()));
        };
        if target.is_some() && kind_name.as_deref() != Some("cancel") {
            return Err(reject("'target' is only valid on a cancel request".into()));
        }
        let kind = match kind_name.as_deref() {
            Some("stats") => {
                if spec_set {
                    return Err(reject("'spec' is not valid on a stats request".into()));
                }
                RequestKind::Stats
            }
            Some("metrics") => {
                if spec_set {
                    return Err(reject("'spec' is not valid on a metrics request".into()));
                }
                RequestKind::Metrics
            }
            Some("cancel") => {
                if spec_set {
                    return Err(reject("'spec' is not valid on a cancel request".into()));
                }
                let Some(target) = target else {
                    return Err(reject("missing required key 'target'".into()));
                };
                RequestKind::Cancel { target }
            }
            Some("solve") | None => {
                if !spec_set {
                    return Err(reject("missing required key 'spec'".into()));
                }
                RequestKind::Solve(solve)
            }
            Some(other) => {
                return Err(reject(format!(
                    "unknown kind '{other}' (solve|stats|metrics|cancel)"
                )))
            }
        };
        Ok(Request {
            id,
            kind,
            priority,
            deadline_ms,
            index,
        })
    }
}

/// A request line that could not become a [`Request`]: the typed error,
/// plus the id when the line yielded one (echoed in the error response).
#[derive(Clone, Debug, PartialEq)]
pub struct Rejection {
    /// The recovered id, if any.
    pub id: Option<RequestId>,
    /// What was wrong.
    pub error: SoptError,
}

fn truncate(line: &str) -> String {
    const MAX: usize = 80;
    if line.len() <= MAX {
        line.to_string()
    } else {
        let mut end = MAX;
        while !line.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &line[..end])
    }
}

fn id_of(v: &Json) -> Option<RequestId> {
    match v {
        Json::Str(s) => Some(RequestId::Str(s.clone())),
        Json::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => {
            Some(RequestId::Num(*n as i64))
        }
        _ => None,
    }
}

fn str_of(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn num_of(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        _ => None,
    }
}

fn int_of(v: &Json) -> Option<i64> {
    match v {
        Json::Num(n) if n.fract() == 0.0 && n.abs() <= i64::MAX as f64 => Some(*n as i64),
        _ => None,
    }
}

fn uint_of(v: &Json) -> Option<u64> {
    match v {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => Some(*n as u64),
        _ => None,
    }
}

/// `f64` → shortest JSON number round-tripping exactly (requests carry
/// user knobs, which must not be rounded the way report values are).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

// ---------------------------------------------------------------------------
// Response side.

/// What happened to a request.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The solve succeeded.
    Ok(Report),
    /// The solve (or the request itself) failed; the error is typed.
    Err(SoptError),
    /// The scheduler shed the request (deadline expired before solving,
    /// or it was withdrawn by a cancel).
    Dropped {
        /// Why it was shed.
        reason: String,
    },
    /// A cancel request's acknowledgement: the target id is now marked
    /// withdrawn (whether or not a matching solve is queued).
    Cancelled {
        /// The id the cancel targeted.
        target: RequestId,
    },
    /// A stats snapshot.
    Stats(EngineStats),
    /// A metrics snapshot: per-phase latency histograms and counters.
    Metrics(sopt_obs::MetricsSnapshot),
}

/// Per-solve timing attached to an `ok` response when the server was
/// built with metrics enabled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolveTelemetry {
    /// End-to-end service time of the solve in microseconds (cache hits
    /// included — they are the fast mode of the same distribution).
    pub elapsed_us: u64,
    /// Frank–Wolfe iterations this request cost (0 for a cache hit or a
    /// warm-seeded solve that went straight to the polish).
    pub fw_iters: u64,
}

/// One line of the serve protocol: the typed response envelope.
#[derive(Clone, Debug)]
pub struct Response {
    /// The request's id (`None` only when the line was not JSON and no id
    /// could be recovered — serialized as `"id": null`).
    pub id: Option<RequestId>,
    /// The request's `index`, echoed when present.
    pub index: Option<usize>,
    /// What happened.
    pub outcome: Outcome,
    /// Per-solve timing, present only on `ok` outcomes from a
    /// metrics-enabled server (serialized as top-level `elapsed_us` /
    /// `fw_iters` fields).
    pub telemetry: Option<SolveTelemetry>,
}

impl Response {
    /// The error response for a rejected request line.
    pub fn rejection(r: Rejection) -> Self {
        Response {
            id: r.id,
            index: None,
            outcome: Outcome::Err(r.error),
            telemetry: None,
        }
    }

    /// Serializes to one JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let id = match &self.id {
            Some(id) => id.to_json(),
            None => "null".to_string(),
        };
        let mut fields = vec!["\"v\": 1".to_string(), format!("\"id\": {id}")];
        if let Some(i) = self.index {
            fields.push(format!("\"index\": {i}"));
        }
        match &self.outcome {
            Outcome::Ok(report) => {
                fields.push("\"status\": \"ok\"".to_string());
                fields.push(format!("\"report\": {}", report.to_json()));
                if let Some(t) = &self.telemetry {
                    fields.push(format!("\"elapsed_us\": {}", t.elapsed_us));
                    fields.push(format!("\"fw_iters\": {}", t.fw_iters));
                }
            }
            Outcome::Err(e) => {
                fields.push("\"status\": \"err\"".to_string());
                fields.push(format!("\"error\": {}", json_str(&e.to_string())));
            }
            Outcome::Dropped { reason } => {
                fields.push("\"status\": \"dropped\"".to_string());
                fields.push(format!("\"reason\": {}", json_str(reason)));
            }
            Outcome::Cancelled { target } => {
                fields.push("\"status\": \"cancelled\"".to_string());
                fields.push(format!("\"target\": {}", target.to_json()));
            }
            Outcome::Stats(stats) => {
                fields.push("\"status\": \"stats\"".to_string());
                fields.push(format!("\"stats\": {}", stats_json(stats)));
            }
            Outcome::Metrics(snapshot) => {
                fields.push("\"status\": \"metrics\"".to_string());
                fields.push(format!("\"metrics\": {}", snapshot.to_json()));
            }
        }
        format!("{{{}}}", fields.join(", "))
    }
}

/// Serializes an [`EngineStats`] snapshot (the `stats` response payload).
pub(crate) fn stats_json(s: &EngineStats) -> String {
    format!(
        "{{\"scenarios\": {}, \"delivered\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"eq_hits\": {}, \"eq_misses\": {}, \
         \"net_profile_hits\": {}, \"net_profile_misses\": {}, \
         \"disk_hits\": {}, \"profile_evictions\": {}, \
         \"report_evictions\": {}, \"steals\": {}, \"dropped\": {}, \
         \"cancelled\": {}, \"uptime_ms\": {}, \"queue_depth\": {}}}",
        s.scenarios,
        s.delivered,
        s.cache_hits,
        s.cache_misses,
        s.eq_hits,
        s.eq_misses,
        s.net_profile_hits,
        s.net_profile_misses,
        s.disk_hits,
        s.profile_evictions,
        s.report_evictions,
        s.steals,
        s.dropped,
        s.cancelled,
        s.uptime_ms,
        s.queue_depth
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_the_envelope_shapes() {
        let v =
            parse_json(r#"{"v": 1, "id": "a\nb", "nums": [1, -2.5, 1e-9], "t": true}"#).unwrap();
        let Json::Obj(fields) = v else { panic!() };
        assert_eq!(fields[0], ("v".into(), Json::Num(1.0)));
        assert_eq!(fields[1], ("id".into(), Json::Str("a\nb".into())));
        assert_eq!(
            fields[2].1,
            Json::Arr(vec![Json::Num(1.0), Json::Num(-2.5), Json::Num(1e-9)])
        );
        assert_eq!(fields[3].1, Json::Bool(true));
    }

    #[test]
    fn json_parser_rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "{\"a\": 1} extra",
            "\"unterminated",
            "{\"a\": +1}",
            "{\"a\": 1e999}",
            "\u{1}",
            "{\"\\q\": 1}",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn request_round_trips_through_json() {
        let req = Request {
            id: RequestId::Str("r-1".into()),
            kind: RequestKind::Solve(SolveRequest {
                spec: "x, 1.0".into(),
                task: Some(Task::Curve),
                rate: Some(2.0),
                alpha: Some(0.25),
                steps: Some(12),
                tolerance: Some(1e-9),
                max_iters: Some(500),
                strategy: Some(CurveStrategy::Weak),
                price_steps: Some(24),
                price_rounds: Some(80),
                aon: Some(AonMode::Parallel),
            }),
            priority: -3,
            deadline_ms: Some(1500),
            index: Some(7),
        };
        let back = Request::parse(&req.to_json()).unwrap();
        assert_eq!(back, req);
        let stats = Request::stats(9);
        assert_eq!(Request::parse(&stats.to_json()).unwrap(), stats);
        let cancel = Request::cancel("c1", 42);
        assert_eq!(Request::parse(&cancel.to_json()).unwrap(), cancel);
    }

    #[test]
    fn cancel_requests_validate_their_target() {
        // target is required on cancel…
        let r = Request::parse(r#"{"v": 1, "id": "c", "kind": "cancel"}"#).unwrap_err();
        assert!(r.error.to_string().contains("'target'"), "{}", r.error);
        // …and invalid anywhere else.
        let r =
            Request::parse(r#"{"v": 1, "id": "s", "spec": "x, 1.0", "target": 3}"#).unwrap_err();
        assert!(
            r.error.to_string().contains("only valid on a cancel"),
            "{}",
            r.error
        );
        // A cancel cannot smuggle a spec.
        let r =
            Request::parse(r#"{"v": 1, "id": "c", "kind": "cancel", "target": 3, "spec": "x"}"#)
                .unwrap_err();
        assert!(r.error.to_string().contains("'spec'"), "{}", r.error);
        // The ack echoes the target.
        let resp = Response {
            id: Some(RequestId::Str("c".into())),
            index: None,
            outcome: Outcome::Cancelled {
                target: RequestId::Num(42),
            },
            telemetry: None,
        };
        let line = resp.to_json();
        assert!(line.contains("\"status\": \"cancelled\""), "{line}");
        assert!(line.contains("\"target\": 42"), "{line}");
    }

    #[test]
    fn rejections_echo_a_recoverable_id() {
        // Valid JSON, bad request: the id survives into the rejection.
        let r = Request::parse(r#"{"v": 1, "id": "keep-me", "bogus": 3}"#).unwrap_err();
        assert_eq!(r.id, Some(RequestId::Str("keep-me".into())));
        assert!(r.error.to_string().contains("bogus"));
        // Not JSON at all: no id to recover.
        let r = Request::parse("not json").unwrap_err();
        assert_eq!(r.id, None);
        // Wrong version is rejected even with everything else valid.
        let r = Request::parse(r#"{"v": 2, "id": 1, "spec": "x, 1.0"}"#).unwrap_err();
        assert!(r.error.to_string().contains("version"));
        // Missing v.
        let r = Request::parse(r#"{"id": 1, "spec": "x, 1.0"}"#).unwrap_err();
        assert!(r.error.to_string().contains("'v'"));
    }

    #[test]
    fn response_json_has_the_envelope_fields() {
        let resp = Response {
            id: Some(RequestId::Num(4)),
            index: Some(0),
            outcome: Outcome::Dropped {
                reason: "deadline expired".into(),
            },
            telemetry: None,
        };
        let line = resp.to_json();
        assert!(line.contains("\"v\": 1"), "{line}");
        assert!(line.contains("\"id\": 4"), "{line}");
        assert!(line.contains("\"index\": 0"), "{line}");
        assert!(line.contains("\"status\": \"dropped\""), "{line}");
        let err = Response::rejection(Rejection {
            id: None,
            error: SoptError::EmptyScenario,
        });
        assert!(err.to_json().contains("\"id\": null"));
        assert!(err.to_json().contains("\"status\": \"err\""));
    }

    #[test]
    fn stats_serialize_every_counter() {
        let s = EngineStats {
            disk_hits: 2,
            dropped: 1,
            cancelled: 3,
            uptime_ms: 1234,
            queue_depth: 5,
            ..EngineStats::default()
        };
        let j = stats_json(&s);
        assert!(j.contains("\"disk_hits\": 2"), "{j}");
        assert!(j.contains("\"dropped\": 1"), "{j}");
        assert!(j.contains("\"cancelled\": 3"), "{j}");
        assert!(j.contains("\"uptime_ms\": 1234"), "{j}");
        assert!(j.contains("\"queue_depth\": 5"), "{j}");
        assert!(parse_json(&j).is_ok(), "{j}");
    }

    #[test]
    fn metrics_requests_round_trip_and_validate() {
        let req = Request::metrics("m1");
        assert_eq!(req.to_json(), r#"{"v": 1, "id": "m1", "kind": "metrics"}"#);
        assert_eq!(Request::parse(&req.to_json()).unwrap(), req);
        // A metrics request cannot smuggle a spec…
        let r =
            Request::parse(r#"{"v": 1, "id": "m", "kind": "metrics", "spec": "x"}"#).unwrap_err();
        assert!(r.error.to_string().contains("'spec'"), "{}", r.error);
        // …or a target.
        let r =
            Request::parse(r#"{"v": 1, "id": "m", "kind": "metrics", "target": 3}"#).unwrap_err();
        assert!(r.error.to_string().contains("'target'"), "{}", r.error);
    }

    #[test]
    fn metrics_response_serializes_the_snapshot_as_json() {
        let rec = sopt_obs::Recorder::enabled();
        rec.record_duration(sopt_obs::Phase::SolveLatency, 180);
        rec.record_duration(sopt_obs::Phase::QueueWait, 12);
        rec.add(sopt_obs::Counter::ColdStarts, 1);
        let resp = Response {
            id: Some(RequestId::Str("m".into())),
            index: None,
            outcome: Outcome::Metrics(rec.snapshot()),
            telemetry: None,
        };
        let line = resp.to_json();
        assert!(line.contains("\"status\": \"metrics\""), "{line}");
        assert!(line.contains("\"solve_latency\": {\"count\": 1"), "{line}");
        assert!(line.contains("\"p50_us\": "), "{line}");
        assert!(line.contains("\"cold_starts\": 1"), "{line}");
        // The whole envelope stays parseable by the codec's own parser.
        assert!(parse_json(&line).is_ok(), "{line}");
    }

    #[test]
    fn ok_responses_carry_telemetry_when_present() {
        let report = crate::api::Scenario::parse("x, 1.0")
            .unwrap()
            .solve()
            .run()
            .unwrap();
        let mut resp = Response {
            id: Some(RequestId::Num(1)),
            index: None,
            outcome: Outcome::Ok(report),
            telemetry: Some(SolveTelemetry {
                elapsed_us: 321,
                fw_iters: 9,
            }),
        };
        let line = resp.to_json();
        assert!(line.contains("\"elapsed_us\": 321"), "{line}");
        assert!(line.contains("\"fw_iters\": 9"), "{line}");
        assert!(parse_json(&line).is_ok(), "{line}");
        // Without telemetry the fields are absent entirely.
        resp.telemetry = None;
        let line = resp.to_json();
        assert!(!line.contains("elapsed_us"), "{line}");
    }
}
