//! `sopt serve` — the persistent solve daemon behind one typed
//! [`Request`]/[`Response`] envelope.
//!
//! The engine (PR 4) solves a *fleet*: the whole workload is known up
//! front, so scheduling is LPT seeding plus work stealing. A daemon's
//! workload arrives over time, with per-request priorities and deadlines,
//! so this module adds the missing half: a [`Server`] that owns a warm
//! [`SolveCache`] (optionally disk-backed, so warmth survives restarts),
//! pulls requests from a closable priority queue
//! ([`PriorityQueue`](super::engine::scheduler::PriorityQueue)), and
//! answers every line it reads — solved, typed error, or typed `dropped`.
//!
//! The wire format lives in [`codec`]; the disk log in [`persist`]. Both
//! `sopt serve` (socket or stdin/stdout pipe) and `sopt batch --stream`
//! are thin clients of this module, and the typed structs are the public
//! submission API ([`Server::handle`], [`Server::run_requests`]).
//!
//! ## Scheduling semantics
//!
//! * Higher [`Request::priority`] pops first; equal priorities are FIFO,
//!   so a steady stream of urgent work can delay but never reorder or
//!   starve the backlog.
//! * [`Request::deadline_ms`] is a time budget measured from *receipt*.
//!   The check runs when a worker dequeues the request: a request that
//!   waited out its budget in the queue is answered
//!   `{"status": "dropped", …}` under [`ShedPolicy::DropExpired`] (the
//!   default) instead of burning a worker on an answer nobody is waiting
//!   for. [`ShedPolicy::Never`] disables shedding. A deadline of `0`
//!   always sheds — useful as a liveness probe that exercises the drop
//!   path without solving anything.
//! * `kind: "stats"` requests ride the same queue (priority them ahead if
//!   needed) and answer with the server's cumulative [`EngineStats`],
//!   including `disk_hits` — cache hits served by entries that were
//!   replayed from the persistence log rather than computed this process.
//! * `kind: "metrics"` requests answer with the full
//!   [`MetricsSnapshot`](sopt_obs::MetricsSnapshot) of the server's
//!   recorder (per-phase latency histograms as bucket arrays plus solver
//!   counters). The recorder is off — and the snapshot empty — unless the
//!   server was built with [`EngineBuilder::metrics`]; when it is on,
//!   every `ok` solve response additionally carries `elapsed_us` and
//!   `fw_iters`.
//! * `kind: "cancel"` requests withdraw a queued solve by id
//!   (`"target"`). The cancel is acked with `{"status": "cancelled"}` as
//!   soon as a worker pops it; the targeted solve, when it is later
//!   dequeued, is answered `{"status": "dropped"}` without solving and
//!   counted in `EngineStats::cancelled`. Cancels obey the same priority
//!   order as everything else — submit them at a higher priority to
//!   overtake the work they withdraw. A cancel whose target was already
//!   solved (or never submitted) still acks; the mark waits for a future
//!   solve with that id.

pub mod codec;
pub(crate) mod persist;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use super::engine::cache::CacheCounters;
use super::engine::scheduler::{cached_solve, PriorityQueue, RunCounters};
use super::engine::{EngineBuilder, EngineStats, SolveCache};
use super::error::SoptError;
use super::report::Report;
use super::scenario::Scenario;
use super::solve::SolveOptions;

pub use codec::{
    Outcome, Rejection, Request, RequestId, RequestKind, Response, SolveRequest, SolveTelemetry,
};

/// One-shot compaction of a `soptcache` log at `path` (`sopt cache
/// compact`): drops torn or undecodable records, keeps only the newest
/// record per cache key, and atomically replaces the file. Returns
/// `(before, after)` record counts.
///
/// Offline maintenance: run it while no server has the log attached — an
/// append racing the snapshot is lost at the rename.
pub fn compact_cache(path: &std::path::Path) -> Result<(usize, usize), SoptError> {
    persist::compact(path)
}

/// What the scheduler does with a request whose deadline expired while it
/// waited in the queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Answer it with a typed `dropped` response without solving
    /// (the default).
    #[default]
    DropExpired,
    /// Ignore deadlines and solve everything.
    Never,
}

impl ShedPolicy {
    /// The CLI name (`--shed <name>`).
    pub fn name(self) -> &'static str {
        match self {
            ShedPolicy::DropExpired => "drop",
            ShedPolicy::Never => "never",
        }
    }

    /// Parses a CLI name.
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "drop" | "drop-expired" => Some(ShedPolicy::DropExpired),
            "never" => Some(ShedPolicy::Never),
            _ => None,
        }
    }
}

/// A persistent solve server: one warm cache, a worker pool, and the
/// typed envelope in front of both. Built from an [`EngineBuilder`]
/// ([`EngineBuilder::server`]); the builder's solve knobs become the
/// per-request defaults.
///
/// ```
/// use stackopt::api::{EngineBuilder, Request, SolveRequest, Outcome};
///
/// let server = EngineBuilder::new().threads(1).server()?;
/// let req = Request::solve("r1", SolveRequest {
///     spec: "x, 1.0".into(),
///     ..SolveRequest::default()
/// });
/// let resp = server.handle(req);
/// assert!(matches!(resp.outcome, Outcome::Ok(_)));
/// # Ok::<(), stackopt::api::SoptError>(())
/// ```
pub struct Server {
    cache: Arc<SolveCache>,
    threads: usize,
    shed: ShedPolicy,
    options: SolveOptions,
    /// Cache counters at construction — [`Server::stats`] reports deltas,
    /// so a shared/persisted cache's prior traffic is not attributed to
    /// this server.
    base: CacheCounters,
    counters: RunCounters,
    scenarios: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    cancelled: AtomicU64,
    /// Construction instant — `stats` reports the difference as
    /// `uptime_ms`.
    started: Instant,
    /// Requests pushed but not yet popped, across every entry point that
    /// routes through the queue (a live gauge, not a counter).
    queue_depth: AtomicU64,
    /// This server's handle on the process-global recorder: enabled when
    /// the builder asked for metrics, otherwise a free no-op. Response
    /// telemetry is gated on this handle (not on the global directly) so
    /// one metrics-enabled server does not change the envelopes of
    /// another in the same process.
    recorder: sopt_obs::Recorder,
    /// Ids withdrawn by a `cancel` request but not yet matched against a
    /// dequeued solve. Insert-on-cancel, remove-on-match: a cancel that
    /// arrives before its solve still wins, and each cancel withdraws at
    /// most one solve.
    withdrawn: std::sync::Mutex<std::collections::HashSet<codec::RequestId>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("threads", &self.threads)
            .field("shed", &self.shed)
            .field("options", &self.options)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl EngineBuilder {
    /// A [`Server`] over this builder's cache (replayed from disk when
    /// [`persist`](EngineBuilder::persist) is set), thread count, shed
    /// policy, and default solve knobs.
    pub fn server(&self) -> Result<Server, SoptError> {
        let cache = self.build_cache()?;
        let base = cache.counters();
        Ok(Server {
            threads: self.threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            }),
            shed: self.shed,
            options: self.options.clone(),
            base,
            counters: RunCounters::default(),
            scenarios: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            started: Instant::now(),
            queue_depth: AtomicU64::new(0),
            recorder: if self.metrics {
                sopt_obs::enable().clone()
            } else {
                sopt_obs::Recorder::disabled()
            },
            withdrawn: std::sync::Mutex::new(std::collections::HashSet::new()),
            cache,
        })
    }
}

impl Server {
    /// Answers one request synchronously on the calling thread (receipt
    /// and dequeue coincide, so only a `deadline_ms` of 0 can shed).
    pub fn handle(&self, request: Request) -> Response {
        self.process(request, Instant::now())
    }

    /// The server's cumulative [`EngineStats`]: request counts and
    /// report-table traffic since construction, profile-table and
    /// disk-hit deltas against the cache's state at construction.
    /// `steals` is always 0 — serve scheduling is a shared priority
    /// queue, not per-worker deques.
    pub fn stats(&self) -> EngineStats {
        let after = self.cache.counters();
        EngineStats {
            scenarios: self.scenarios.load(Ordering::Relaxed) as usize,
            delivered: self.delivered.load(Ordering::Relaxed) as usize,
            cache_hits: self.counters.hits.load(Ordering::Relaxed),
            cache_misses: self.counters.misses.load(Ordering::Relaxed),
            eq_hits: after.eq_hits - self.base.eq_hits,
            eq_misses: after.eq_misses - self.base.eq_misses,
            net_profile_hits: after.net_hits - self.base.net_hits,
            net_profile_misses: after.net_misses - self.base.net_misses,
            disk_hits: after.disk_hits - self.base.disk_hits,
            profile_evictions: after.profile_evictions - self.base.profile_evictions,
            report_evictions: after.report_evictions - self.base.report_evictions,
            steals: 0,
            dropped: self.dropped.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            uptime_ms: self.started.elapsed().as_millis() as u64,
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
        }
    }

    /// A point-in-time [`MetricsSnapshot`](sopt_obs::MetricsSnapshot) of
    /// this server's recorder — the same payload a `kind: "metrics"`
    /// request returns. Empty (all counts zero) unless the server was
    /// built with [`EngineBuilder::metrics`].
    pub fn metrics(&self) -> sopt_obs::MetricsSnapshot {
        self.recorder.snapshot()
    }

    /// Runs a batch of requests through the priority scheduler, delivering
    /// each [`Response`] to `sink` on the calling thread as it completes
    /// (completion order; echo [`Request::index`] to reorder). All
    /// requests share one receipt instant — they are "received" together.
    pub fn run_requests<F>(&self, requests: Vec<Request>, mut sink: F)
    where
        F: FnMut(Response),
    {
        let queue: PriorityQueue<(Request, Instant)> = PriorityQueue::new();
        let arrival = Instant::now();
        for request in requests {
            let priority = request.priority;
            queue.push(priority, (request, arrival));
            self.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
        queue.close();
        if self.threads == 1 {
            while let Some((request, arrival)) = queue.pop() {
                self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                sink(self.process(request, arrival));
            }
            return;
        }
        let (tx, rx) = std::sync::mpsc::channel::<Response>();
        crossbeam::thread::scope(|s| {
            for _ in 0..self.threads {
                let tx = tx.clone();
                let queue = &queue;
                s.spawn(move |_| {
                    while let Some((request, arrival)) = queue.pop() {
                        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        if tx.send(self.process(request, arrival)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for response in rx {
                sink(response);
            }
        })
        .expect("serve workers contain panics per request");
    }

    /// The daemon session loop: reads JSONL requests from `reader` until
    /// EOF, writes one JSONL response per request to `writer` (flushed per
    /// line, completion order). A reader thread parses and enqueues;
    /// worker threads solve; the calling thread is the single writer.
    /// Unparseable lines are answered immediately with a typed error
    /// response — they never enter the queue and never panic the server.
    pub fn serve<R, W>(&self, reader: R, mut writer: W) -> Result<(), SoptError>
    where
        R: std::io::BufRead + Send,
        W: std::io::Write,
    {
        let queue: PriorityQueue<(Request, Instant)> = PriorityQueue::new();
        let (tx, rx) = std::sync::mpsc::channel::<Response>();
        let mut write_err: Option<std::io::Error> = None;
        crossbeam::thread::scope(|s| {
            {
                let tx = tx.clone();
                let queue = &queue;
                s.spawn(move |_| {
                    let mut reader = reader;
                    let mut line = String::new();
                    loop {
                        line.clear();
                        match reader.read_line(&mut line) {
                            Ok(0) | Err(_) => break,
                            Ok(_) => {}
                        }
                        let trimmed = line.trim();
                        if trimmed.is_empty() {
                            continue;
                        }
                        match Request::parse(trimmed) {
                            Ok(request) => {
                                let priority = request.priority;
                                queue.push(priority, (request, Instant::now()));
                                self.queue_depth.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(rejection) => {
                                if tx.send(Response::rejection(rejection)).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    queue.close();
                });
            }
            for _ in 0..self.threads {
                let tx = tx.clone();
                let queue = &queue;
                s.spawn(move |_| {
                    while let Some((request, arrival)) = queue.pop() {
                        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        if tx.send(self.process(request, arrival)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            for response in rx {
                let wrote =
                    writeln!(writer, "{}", response.to_json()).and_then(|()| writer.flush());
                if let Err(e) = wrote {
                    write_err = Some(e);
                    break; // sends still succeed (unbounded); we just stop echoing
                }
            }
        })
        .expect("serve workers contain panics per request");
        match write_err {
            None => Ok(()),
            Some(e) => Err(SoptError::Io {
                context: format!("writing response: {e}"),
            }),
        }
    }

    /// Binds a Unix socket at `path` (replacing a stale file) and serves
    /// connections sequentially, each through [`Server::serve`] — the
    /// cache stays warm across connections. Runs until the process exits.
    #[cfg(unix)]
    pub fn serve_socket(&self, path: &std::path::Path) -> Result<(), SoptError> {
        let io_err = |what: &str, e: std::io::Error| SoptError::Io {
            context: format!("{what} '{}': {e}", path.display()),
        };
        match std::fs::remove_file(path) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("cannot replace stale socket", e)),
        }
        let listener =
            std::os::unix::net::UnixListener::bind(path).map_err(|e| io_err("cannot bind", e))?;
        for stream in listener.incoming() {
            let stream = stream.map_err(|e| io_err("accept failed on", e))?;
            let reader = std::io::BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| io_err("cannot clone connection on", e))?,
            );
            // A client that vanishes mid-solve is that connection's
            // problem, not the daemon's: keep listening.
            let _ = self.serve(reader, stream);
        }
        Ok(())
    }

    /// Answers one request whose queue-residency clock started at
    /// `arrival` (the shed check compares the elapsed wait to the budget).
    fn process(&self, request: Request, arrival: Instant) -> Response {
        self.recorder.record_duration(
            sopt_obs::Phase::QueueWait,
            arrival.elapsed().as_micros() as u64,
        );
        let Request {
            id,
            kind,
            deadline_ms,
            index,
            ..
        } = request;
        let solve = match kind {
            RequestKind::Stats => {
                return Response {
                    id: Some(id),
                    index,
                    outcome: Outcome::Stats(self.stats()),
                    telemetry: None,
                }
            }
            RequestKind::Metrics => {
                return Response {
                    id: Some(id),
                    index,
                    outcome: Outcome::Metrics(self.metrics()),
                    telemetry: None,
                }
            }
            RequestKind::Cancel { target } => {
                self.withdrawn
                    .lock()
                    .expect("withdrawn-set lock poisoned")
                    .insert(target.clone());
                return Response {
                    id: Some(id),
                    index,
                    outcome: Outcome::Cancelled { target },
                    telemetry: None,
                };
            }
            RequestKind::Solve(solve) => solve,
        };
        self.scenarios.fetch_add(1, Ordering::Relaxed);
        if self
            .withdrawn
            .lock()
            .expect("withdrawn-set lock poisoned")
            .remove(&id)
        {
            self.cancelled.fetch_add(1, Ordering::Relaxed);
            return Response {
                id: Some(id),
                index,
                outcome: Outcome::Dropped {
                    reason: "withdrawn by a cancel request".into(),
                },
                telemetry: None,
            };
        }
        if self.shed == ShedPolicy::DropExpired {
            if let Some(budget) = deadline_ms {
                let waited = arrival.elapsed().as_millis() as u64;
                if waited >= budget {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    return Response {
                        id: Some(id),
                        index,
                        outcome: Outcome::Dropped {
                            reason: format!(
                                "deadline of {budget} ms expired after {waited} ms in queue"
                            ),
                        },
                        telemetry: None,
                    };
                }
            }
        }
        // A request is solved start to finish on this thread, so the
        // solver's thread-local notes (FW iteration counts) belong to this
        // request; drain any residue first, time the whole service, and
        // attach both to the envelope on success.
        let solve_started = self.recorder.is_enabled().then(|| {
            let _ = sopt_obs::take_solve_notes();
            Instant::now()
        });
        let result =
            catch_unwind(AssertUnwindSafe(|| self.solve_scenario(&solve))).unwrap_or_else(|_| {
                Err(SoptError::WorkerPanic {
                    index: index.unwrap_or(0),
                })
            });
        self.delivered.fetch_add(1, Ordering::Relaxed);
        let telemetry = solve_started.map(|started| {
            let elapsed_us = started.elapsed().as_micros() as u64;
            self.recorder
                .record_duration(sopt_obs::Phase::SolveLatency, elapsed_us);
            codec::SolveTelemetry {
                elapsed_us,
                fw_iters: sopt_obs::take_solve_notes().fw_iters,
            }
        });
        match result {
            Ok(report) => Response {
                id: Some(id),
                index,
                outcome: Outcome::Ok(report),
                telemetry,
            },
            Err(e) => Response {
                id: Some(id),
                index,
                outcome: Outcome::Err(e),
                telemetry: None,
            },
        }
    }

    /// Parses, applies knob overrides, and solves through the same cached
    /// path as the fleet engine — one memo table, one disk log, both
    /// entry points.
    fn solve_scenario(&self, solve: &SolveRequest) -> Result<Report, SoptError> {
        let mut scenario = Scenario::parse(&solve.spec)?;
        if let Some(rate) = solve.rate {
            scenario = scenario.with_rate(rate)?;
        }
        let options = solve.options_over(&self.options);
        cached_solve(scenario, &options, Some(&self.cache), &self.counters)
    }
}

#[cfg(test)]
mod tests {
    use super::super::solve::Task;
    use super::*;

    fn server() -> Server {
        EngineBuilder::new().threads(1).server().unwrap()
    }

    fn solve_req(id: &str, spec: &str) -> Request {
        Request::solve(
            id,
            SolveRequest {
                spec: spec.into(),
                ..SolveRequest::default()
            },
        )
    }

    #[test]
    fn handle_solves_and_memoizes() {
        let server = server();
        let first = server.handle(solve_req("a", "x, 1.0"));
        let Outcome::Ok(report) = &first.outcome else {
            panic!("{:?}", first.outcome)
        };
        assert!((report.data.as_beta().unwrap().beta - 0.5).abs() < 1e-9);
        let second = server.handle(solve_req("b", "x, 1.0"));
        assert!(matches!(second.outcome, Outcome::Ok(_)));
        let stats = server.stats();
        assert_eq!(stats.scenarios, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn zero_deadline_is_always_shed_and_counted() {
        let server = server();
        let mut req = solve_req("probe", "x, 1.0");
        req.deadline_ms = Some(0);
        let resp = server.handle(req.clone());
        assert!(
            matches!(&resp.outcome, Outcome::Dropped { reason } if reason.contains("deadline")),
            "{:?}",
            resp.outcome
        );
        assert_eq!(server.stats().dropped, 1);
        // ShedPolicy::Never solves it anyway.
        let lenient = EngineBuilder::new()
            .threads(1)
            .shed(ShedPolicy::Never)
            .server()
            .unwrap();
        let resp = lenient.handle(req);
        assert!(matches!(resp.outcome, Outcome::Ok(_)));
        assert_eq!(lenient.stats().dropped, 0);
    }

    #[test]
    fn run_requests_pops_by_priority_then_fifo() {
        let server = server();
        let mut reqs = Vec::new();
        for (id, priority) in [("low", -1), ("first", 0), ("second", 0), ("urgent", 7)] {
            let mut r = solve_req(id, "x, 1.0");
            r.priority = priority;
            reqs.push(r);
        }
        let mut order = Vec::new();
        server.run_requests(reqs, |resp| {
            let Some(RequestId::Str(id)) = resp.id else {
                panic!()
            };
            order.push(id);
        });
        assert_eq!(order, ["urgent", "first", "second", "low"]);
    }

    #[test]
    fn cancel_withdraws_a_queued_solve_and_is_counted() {
        let server = server();
        // Cancel-before-solve: the mark waits for the matching id.
        let ack = server.handle(Request::cancel("c1", "victim"));
        let Outcome::Cancelled { target } = &ack.outcome else {
            panic!("{:?}", ack.outcome)
        };
        assert_eq!(*target, RequestId::Str("victim".into()));
        let resp = server.handle(solve_req("victim", "x, 1.0"));
        assert!(
            matches!(&resp.outcome, Outcome::Dropped { reason } if reason.contains("cancel")),
            "{:?}",
            resp.outcome
        );
        let stats = server.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.dropped, 0, "cancel is not a deadline shed");
        // The mark is consumed: resubmitting the same id solves normally.
        let resp = server.handle(solve_req("victim", "x, 1.0"));
        assert!(matches!(resp.outcome, Outcome::Ok(_)));
        assert_eq!(server.stats().cancelled, 1);
        // In the priority queue, a high-priority cancel overtakes the
        // low-priority solve it withdraws.
        let mut solve = solve_req("slow", "x, 1.0");
        solve.priority = -5;
        let mut cancel = Request::cancel("c2", "slow");
        cancel.priority = 5;
        let mut outcomes = Vec::new();
        server.run_requests(vec![solve, cancel], |resp| {
            outcomes.push(resp.outcome);
        });
        assert!(matches!(outcomes[0], Outcome::Cancelled { .. }));
        assert!(matches!(outcomes[1], Outcome::Dropped { .. }));
        assert_eq!(server.stats().cancelled, 2);
    }

    #[test]
    fn errors_are_typed_not_fatal() {
        let server = server();
        let resp = server.handle(solve_req("bad", "not a spec ("));
        assert!(matches!(resp.outcome, Outcome::Err(_)));
        // The server keeps serving after an error.
        let resp = server.handle(solve_req("ok", "x, 1.0"));
        assert!(matches!(resp.outcome, Outcome::Ok(_)));
    }

    #[test]
    fn serve_loop_answers_every_line() {
        let server = server();
        let input = "\
            {\"v\": 1, \"id\": \"a\", \"spec\": \"x, 1.0\"}\n\
            not json at all\n\
            \n\
            {\"v\": 1, \"id\": \"b\", \"spec\": \"x, 1.0\", \"task\": \"equilib\"}\n\
            {\"v\": 1, \"id\": \"s\", \"kind\": \"stats\"}\n";
        let mut out = Vec::new();
        server.serve(input.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4, "{out}");
        for line in &lines {
            assert!(codec::parse_json(line).is_ok(), "unparseable: {line}");
        }
        assert_eq!(out.matches("\"status\": \"ok\"").count(), 2, "{out}");
        assert_eq!(out.matches("\"status\": \"err\"").count(), 1, "{out}");
        assert_eq!(out.matches("\"status\": \"stats\"").count(), 1, "{out}");
        // With one worker the stats line reflects both prior solves.
        let stats_line = lines.iter().find(|l| l.contains("\"stats\"")).unwrap();
        assert!(stats_line.contains("\"scenarios\": 2"), "{stats_line}");
    }

    #[test]
    fn per_request_knobs_override_server_defaults() {
        let server = EngineBuilder::new()
            .threads(1)
            .task(Task::Equilib)
            .server()
            .unwrap();
        let resp = server.handle(solve_req("default", "x, 1.0"));
        let Outcome::Ok(report) = &resp.outcome else {
            panic!()
        };
        assert!(report.data.as_equilib().is_some());
        let mut req = solve_req("override", "x, 1.0");
        let RequestKind::Solve(s) = &mut req.kind else {
            panic!()
        };
        s.task = Some(Task::Beta);
        let resp = server.handle(req);
        let Outcome::Ok(report) = &resp.outcome else {
            panic!()
        };
        assert!(report.data.as_beta().is_some());
    }
}
