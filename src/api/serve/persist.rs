//! The disk-backed second-level cache: an append-only log of solved
//! reports and equilibrium profiles, replayed on startup.
//!
//! ## File format (`soptcache` version 2)
//!
//! A plain text file. Line 1 is the header `soptcache 2`; every further
//! line is one record, tab-separated:
//!
//! ```text
//! R␉task␉class␉tol₁₆␉alpha₁₆␉steps␉max_iters␉strategy␉psteps␉prounds␉aon␉spec␉payload
//! P␉class␉kind␉fwknobs␉spec␉payload
//! ```
//!
//! `R` records are report-memo entries — the key fields are exactly the
//! [`Fingerprint`] fields (the digest is recomputed on replay, so the log
//! carries no hash to go stale). `P` records are profile-memo entries —
//! the [`ProfileKey`] fields, with `fwknobs` either `-` (knob-free
//! parallel equalizer) or `tol₁₆:max_iters:conjugate:restart:stall:aon`.
//! (Version 2 added the `aon` strategy token to both key shapes.)
//!
//! Every `f64` in a key or payload is written as the 16-hex-digit big-endian
//! encoding of its IEEE-754 bits (`f64::to_bits`), **never** as decimal
//! text: replayed values are bit-for-bit the values that were computed, so
//! a report served across a restart serializes byte-identically to the
//! report that was first solved. Payload vectors are comma-joined (`-`
//! when empty); curve points are `alpha:cost:ratio:oracle` tokens.
//!
//! ## Robustness
//!
//! * Only `Ok` results are persisted — errors are deterministic to
//!   recompute and not worth the bytes.
//! * A torn final line (crash mid-append) or any undecodable record is
//!   skipped on replay; the rest of the log still loads.
//! * A file whose header is not `soptcache 2` is refused with a typed
//!   [`SoptError::Io`] — future format versions bump the header rather
//!   than silently misparsing.
//! * Append failures (disk full, revoked permissions) poison the log
//!   handle: the server keeps solving from memory and simply stops
//!   persisting, rather than failing requests.

use std::io::Write;
use std::path::Path;

use sopt_core::curve::CurveStrategy;
use sopt_network::flow::EdgeFlow;
use sopt_solver::frank_wolfe::FwResult;
use sopt_solver::AonMode;

use super::super::engine::cache::{DiskAttachment, EqKind, FwKnobs, ProfileKey, SolveCache};
use super::super::engine::fingerprint::Fingerprint;
use super::super::error::SoptError;
use super::super::model::ModelProfile;
use super::super::report::{
    BetaReport, CurvePointReport, CurveReport, EquilibReport, LlfReport, PricingReport,
    PricingSweepPoint, Report, ReportData, ScenarioSummary, TollsReport,
};
use super::super::scenario::ScenarioClass;
use super::super::solve::Task;

/// The header line a version-2 cache file starts with.
const HEADER: &str = "soptcache 2";

/// The write side of the log. Appends are serialized by a mutex and
/// flushed per record; a failed append poisons the handle (persistence
/// stops, solving continues).
pub(crate) struct DiskLog {
    file: std::sync::Mutex<Option<std::fs::File>>,
}

impl DiskLog {
    /// Appends one report record (best-effort; see the module docs).
    pub(crate) fn append_report(&self, fp: &Fingerprint, report: &Report) {
        self.append_line(encode_report(fp, report));
    }

    /// Appends one profile record (best-effort).
    pub(crate) fn append_profile(&self, key: &ProfileKey, profile: &ModelProfile) {
        self.append_line(encode_profile(key, profile));
    }

    fn append_line(&self, line: Option<String>) {
        let Some(line) = line else {
            return; // unencodable (e.g. a spec containing a tab): skip
        };
        let mut guard = self.file.lock().expect("disk log lock poisoned");
        if let Some(f) = guard.as_mut() {
            let wrote = writeln!(f, "{line}").and_then(|()| f.flush());
            if wrote.is_err() {
                *guard = None;
            }
        }
    }
}

/// Opens (creating if missing) the log at `path`, replays every decodable
/// record into `cache`, and attaches the write side so fresh `Ok` results
/// are written through. Called once per cache by
/// [`EngineBuilder::build_cache`](super::super::engine::EngineBuilder).
pub(crate) fn attach(path: &Path, cache: &SolveCache) -> Result<(), SoptError> {
    let io_err = |what: &str, e: std::io::Error| SoptError::Io {
        context: format!("{what} '{}': {e}", path.display()),
    };
    let mut report_keys = std::collections::HashSet::new();
    let mut profile_keys = std::collections::HashSet::new();
    match std::fs::read_to_string(path) {
        Ok(text) if !text.is_empty() => {
            let mut lines = text.lines();
            if lines.next() != Some(HEADER) {
                return Err(SoptError::Io {
                    context: format!(
                        "'{}' is not a soptcache v2 file (bad header)",
                        path.display()
                    ),
                });
            }
            for line in lines {
                match decode_record(line) {
                    Some(Record::Report(fp, report)) => {
                        report_keys.insert(fp.clone());
                        cache.seed_report(fp, report);
                    }
                    Some(Record::Profile(key, profile)) => {
                        profile_keys.insert(key.clone());
                        cache.seed_profile(key, profile);
                    }
                    None => {} // torn or foreign record: skip, keep the rest
                }
            }
        }
        Ok(_) => {} // empty file: treat as fresh
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err("cannot read cache file", e)),
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(|e| io_err("cannot open cache file", e))?;
    let empty = file
        .metadata()
        .map_err(|e| io_err("cannot stat cache file", e))?
        .len()
        == 0;
    if empty {
        writeln!(file, "{HEADER}").map_err(|e| io_err("cannot write cache header", e))?;
    }
    cache.attach_disk(DiskAttachment {
        log: DiskLog {
            file: std::sync::Mutex::new(Some(file)),
        },
        report_keys,
        profile_keys,
    });
    Ok(())
}

enum Record {
    Report(Fingerprint, Report),
    Profile(ProfileKey, ModelProfile),
}

/// One-shot compaction of the log at `path`: drops torn or undecodable
/// records, keeps only the newest record per cache key, and atomically
/// replaces the file (temp file in the same directory + rename). Returns
/// `(before, after)` record counts, header excluded.
///
/// Compaction is offline maintenance: run it while no server has the log
/// attached — an append racing the snapshot is lost at the rename.
pub(crate) fn compact(path: &Path) -> Result<(usize, usize), SoptError> {
    let io_err = |what: &str, e: std::io::Error| SoptError::Io {
        context: format!("{what} '{}': {e}", path.display()),
    };
    let text = std::fs::read_to_string(path).map_err(|e| io_err("cannot read cache file", e))?;
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return Err(SoptError::Io {
            context: format!(
                "'{}' is not a soptcache v2 file (bad header)",
                path.display()
            ),
        });
    }
    // Key = every field but the payload (the final tab-separated field) —
    // exactly the cache identity the record seeds. First-seen key order is
    // kept; the newest record per key wins, mirroring replay semantics.
    let mut order: Vec<&str> = Vec::new();
    let mut latest: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    let mut before = 0usize;
    for line in lines {
        before += 1;
        if decode_record(line).is_none() {
            continue; // torn or foreign: drop rather than carry forward
        }
        let Some((key, _payload)) = line.rsplit_once('\t') else {
            continue;
        };
        if latest.insert(key, line).is_none() {
            order.push(key);
        }
    }
    let tmp = {
        let mut name = path.as_os_str().to_owned();
        name.push(".compact-tmp");
        std::path::PathBuf::from(name)
    };
    let write_tmp = |tmp: &Path| -> std::io::Result<()> {
        let mut f = std::fs::File::create(tmp)?;
        writeln!(f, "{HEADER}")?;
        for key in &order {
            writeln!(f, "{}", latest[key])?;
        }
        f.sync_all()
    };
    if let Err(e) = write_tmp(&tmp) {
        let _ = std::fs::remove_file(&tmp);
        return Err(io_err("cannot write compacted file", e));
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("cannot replace cache file", e))?;
    Ok((before, order.len()))
}

// ---------------------------------------------------------------------------
// Primitive token encoding.

fn hx(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn hx_bits(bits: u64) -> String {
    format!("{bits:016x}")
}

fn unhx(s: &str) -> Option<f64> {
    unhx_bits(s).map(f64::from_bits)
}

fn unhx_bits(s: &str) -> Option<u64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok())?
}

fn vec_enc(v: &[f64]) -> String {
    if v.is_empty() {
        "-".to_string()
    } else {
        v.iter().map(|&x| hx(x)).collect::<Vec<_>>().join(",")
    }
}

fn vec_dec(s: &str) -> Option<Vec<f64>> {
    if s == "-" {
        return Some(Vec::new());
    }
    s.split(',').map(unhx).collect()
}

fn opt_enc(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), hx)
}

fn opt_dec(s: &str) -> Option<Option<f64>> {
    if s == "-" {
        Some(None)
    } else {
        unhx(s).map(Some)
    }
}

fn class_name(c: ScenarioClass) -> &'static str {
    match c {
        ScenarioClass::Parallel => "parallel-links",
        ScenarioClass::Network => "network",
        ScenarioClass::Multi => "multicommodity",
    }
}

fn class_parse(s: &str) -> Option<ScenarioClass> {
    match s {
        "parallel-links" => Some(ScenarioClass::Parallel),
        "network" => Some(ScenarioClass::Network),
        "multicommodity" => Some(ScenarioClass::Multi),
        _ => None,
    }
}

fn kind_parse(s: &str) -> Option<EqKind> {
    match s {
        "nash" => Some(EqKind::Nash),
        "optimum" => Some(EqKind::Optimum),
        _ => None,
    }
}

/// Map an oracle name back to the `&'static str` the report type carries.
fn oracle_static(s: &str) -> Option<&'static str> {
    match s {
        "exact" => Some("exact"),
        "brute-force" => Some("brute-force"),
        "heuristic-upper-bound" => Some("heuristic-upper-bound"),
        _ => None,
    }
}

/// Map a pricing-method name back to the report's `&'static str`.
fn method_static(s: &str) -> Option<&'static str> {
    match s {
        "closed-form" => Some("closed-form"),
        "best-response" => Some("best-response"),
        "single-price-auction" => Some("single-price-auction"),
        _ => None,
    }
}

/// Map a curve-strategy name back to the report's `&'static str`.
fn split_static(s: &str) -> Option<&'static str> {
    match s {
        "strong" => Some("strong"),
        "weak" => Some("weak"),
        _ => None,
    }
}

/// A cursor over space-separated payload tokens.
struct Tok<'a>(std::str::SplitAsciiWhitespace<'a>);

impl<'a> Tok<'a> {
    fn new(s: &'a str) -> Self {
        Tok(s.split_ascii_whitespace())
    }

    fn next(&mut self) -> Option<&'a str> {
        self.0.next()
    }

    fn f64(&mut self) -> Option<f64> {
        unhx(self.next()?)
    }

    fn usize(&mut self) -> Option<usize> {
        self.next()?.parse().ok()
    }

    fn vec(&mut self) -> Option<Vec<f64>> {
        vec_dec(self.next()?)
    }

    fn opt(&mut self) -> Option<Option<f64>> {
        opt_dec(self.next()?)
    }

    /// The payload must be fully consumed — trailing tokens mean a record
    /// from a different (future) writer, which is safer to skip.
    fn done(mut self) -> Option<()> {
        self.next().is_none().then_some(())
    }
}

// ---------------------------------------------------------------------------
// Report records.

fn encode_report(fp: &Fingerprint, report: &Report) -> Option<String> {
    if fp.spec.contains('\t') || fp.spec.contains('\n') {
        return None; // cannot be framed; canonical specs never contain these
    }
    let payload = encode_report_payload(report)?;
    Some(format!(
        "R\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
        fp.task.name(),
        class_name(fp.class),
        hx_bits(fp.tolerance_bits),
        hx_bits(fp.alpha_bits),
        fp.steps,
        fp.max_iters,
        fp.strategy.name(),
        fp.price_steps,
        fp.price_rounds,
        fp.aon.name(),
        fp.spec,
        payload
    ))
}

fn encode_report_payload(report: &Report) -> Option<String> {
    let s = &report.scenario;
    let head = format!("{} {} {}", s.size, s.nodes, hx(s.rate));
    let data = match &report.data {
        ReportData::Beta(b) => format!(
            "beta {} {} {} {} {} {} {}",
            hx(b.beta),
            hx(b.nash_cost),
            hx(b.optimum_cost),
            hx(b.induced_cost),
            vec_enc(&b.strategy),
            vec_enc(&b.optimum),
            vec_enc(&b.commodity_alphas)
        ),
        ReportData::Curve(c) => {
            let points = if c.points.is_empty() {
                "-".to_string()
            } else {
                c.points
                    .iter()
                    .map(|p| {
                        format!(
                            "{}:{}:{}:{}",
                            hx(p.alpha),
                            hx(p.cost),
                            hx(p.ratio),
                            p.oracle
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!(
                "curve {} {} {} {} {} {points}",
                hx(c.beta),
                opt_enc(c.weak_beta),
                c.strategy,
                hx(c.nash_cost),
                hx(c.optimum_cost)
            )
        }
        ReportData::Equilib(e) => format!(
            "equilib {} {} {} {} {} {}",
            vec_enc(&e.nash_flows),
            opt_enc(e.nash_level),
            hx(e.nash_cost),
            vec_enc(&e.optimum_flows),
            opt_enc(e.optimum_level),
            hx(e.optimum_cost)
        ),
        ReportData::Tolls(t) => format!(
            "tolls {} {} {} {} {}",
            vec_enc(&t.tolls),
            vec_enc(&t.optimum),
            vec_enc(&t.tolled_nash),
            hx(t.tolled_cost),
            hx(t.revenue)
        ),
        ReportData::Llf(l) => format!(
            "llf {} {} {} {} {} {}",
            hx(l.alpha),
            vec_enc(&l.strategy),
            hx(l.cost),
            hx(l.optimum_cost),
            hx(l.ratio),
            hx(l.bound)
        ),
        ReportData::Pricing(p) => {
            let sweep = if p.sweep.is_empty() {
                "-".to_string()
            } else {
                p.sweep
                    .iter()
                    .map(|s| format!("{}:{}", hx(s.beta), hx(s.revenue)))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            format!(
                "pricing {} {} {} {} {} {sweep}",
                p.method,
                vec_enc(&p.prices),
                vec_enc(&p.flows),
                hx(p.revenue),
                opt_enc(p.level)
            )
        }
    };
    Some(format!("{head} {data}"))
}

fn decode_record(line: &str) -> Option<Record> {
    let mut fields = line.split('\t');
    match fields.next()? {
        "R" => decode_report(fields),
        "P" => decode_profile(fields),
        _ => None,
    }
}

fn decode_report(mut fields: std::str::Split<'_, char>) -> Option<Record> {
    let task: Task = fields.next()?.parse().ok()?;
    let class = class_parse(fields.next()?)?;
    let tolerance_bits = unhx_bits(fields.next()?)?;
    let alpha_bits = unhx_bits(fields.next()?)?;
    let steps: usize = fields.next()?.parse().ok()?;
    let max_iters: usize = fields.next()?.parse().ok()?;
    let strategy = CurveStrategy::from_name(fields.next()?)?;
    let price_steps: usize = fields.next()?.parse().ok()?;
    let price_rounds: usize = fields.next()?.parse().ok()?;
    let aon = AonMode::from_name(fields.next()?)?;
    let spec = fields.next()?.to_string();
    let payload = fields.next()?;
    if fields.next().is_some() {
        return None;
    }
    let mut t = Tok::new(payload);
    let size = t.usize()?;
    let nodes = t.usize()?;
    let rate = t.f64()?;
    let data = decode_report_data(&mut t)?;
    t.done()?;
    let report = Report {
        scenario: ScenarioSummary {
            class,
            task,
            size,
            nodes,
            rate,
        },
        data,
    };
    let fp = Fingerprint::from_parts(
        spec,
        class,
        task,
        tolerance_bits,
        alpha_bits,
        steps,
        max_iters,
        strategy,
        price_steps,
        price_rounds,
        aon,
    );
    Some(Record::Report(fp, report))
}

fn decode_report_data(t: &mut Tok<'_>) -> Option<ReportData> {
    match t.next()? {
        "beta" => Some(ReportData::Beta(BetaReport {
            beta: t.f64()?,
            nash_cost: t.f64()?,
            optimum_cost: t.f64()?,
            induced_cost: t.f64()?,
            strategy: t.vec()?,
            optimum: t.vec()?,
            commodity_alphas: t.vec()?,
        })),
        "curve" => {
            let beta = t.f64()?;
            let weak_beta = t.opt()?;
            let strategy = split_static(t.next()?)?;
            let nash_cost = t.f64()?;
            let optimum_cost = t.f64()?;
            let points_tok = t.next()?;
            let points = if points_tok == "-" {
                Vec::new()
            } else {
                points_tok
                    .split(',')
                    .map(|p| {
                        let mut parts = p.split(':');
                        let point = CurvePointReport {
                            alpha: unhx(parts.next()?)?,
                            cost: unhx(parts.next()?)?,
                            ratio: unhx(parts.next()?)?,
                            oracle: oracle_static(parts.next()?)?,
                        };
                        parts.next().is_none().then_some(point)
                    })
                    .collect::<Option<Vec<_>>>()?
            };
            Some(ReportData::Curve(CurveReport {
                beta,
                weak_beta,
                strategy,
                nash_cost,
                optimum_cost,
                points,
            }))
        }
        "equilib" => Some(ReportData::Equilib(EquilibReport {
            nash_flows: t.vec()?,
            nash_level: t.opt()?,
            nash_cost: t.f64()?,
            optimum_flows: t.vec()?,
            optimum_level: t.opt()?,
            optimum_cost: t.f64()?,
        })),
        "tolls" => Some(ReportData::Tolls(TollsReport {
            tolls: t.vec()?,
            optimum: t.vec()?,
            tolled_nash: t.vec()?,
            tolled_cost: t.f64()?,
            revenue: t.f64()?,
        })),
        "llf" => Some(ReportData::Llf(LlfReport {
            alpha: t.f64()?,
            strategy: t.vec()?,
            cost: t.f64()?,
            optimum_cost: t.f64()?,
            ratio: t.f64()?,
            bound: t.f64()?,
        })),
        "pricing" => {
            let method = method_static(t.next()?)?;
            let prices = t.vec()?;
            let flows = t.vec()?;
            let revenue = t.f64()?;
            let level = t.opt()?;
            let sweep_tok = t.next()?;
            let sweep = if sweep_tok == "-" {
                Vec::new()
            } else {
                sweep_tok
                    .split(',')
                    .map(|p| {
                        let mut parts = p.split(':');
                        let point = PricingSweepPoint {
                            beta: unhx(parts.next()?)?,
                            revenue: unhx(parts.next()?)?,
                        };
                        parts.next().is_none().then_some(point)
                    })
                    .collect::<Option<Vec<_>>>()?
            };
            Some(ReportData::Pricing(PricingReport {
                method,
                prices,
                flows,
                revenue,
                level,
                sweep,
            }))
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Profile records.

fn encode_profile(key: &ProfileKey, profile: &ModelProfile) -> Option<String> {
    if key.spec.contains('\t') || key.spec.contains('\n') {
        return None;
    }
    let fw = match key.fw {
        None => "-".to_string(),
        Some(k) => format!(
            "{}:{}:{}:{}:{}:{}",
            hx_bits(k.tolerance_bits),
            k.max_iters,
            u8::from(k.conjugate),
            k.restart_period,
            k.stall_window,
            k.aon
        ),
    };
    let payload = match profile {
        ModelProfile::Parallel { flows, level } => {
            format!("par {} {}", hx(*level), vec_enc(flows))
        }
        ModelProfile::Flow(r) => {
            let per = if r.per_commodity.is_empty() {
                "-".to_string()
            } else {
                r.per_commodity
                    .iter()
                    .map(|f| vec_enc(f.as_slice()))
                    .collect::<Vec<_>>()
                    .join(";")
            };
            format!(
                "fw {} {} {} {} {} {per}",
                hx(r.objective),
                hx(r.rel_gap),
                r.iterations,
                u8::from(r.converged),
                vec_enc(r.flow.as_slice())
            )
        }
    };
    Some(format!(
        "P\t{}\t{}\t{fw}\t{}\t{payload}",
        class_name(key.class),
        key.kind.what(),
        key.spec
    ))
}

fn decode_profile(mut fields: std::str::Split<'_, char>) -> Option<Record> {
    let class = class_parse(fields.next()?)?;
    let kind = kind_parse(fields.next()?)?;
    let fw_tok = fields.next()?;
    let fw = if fw_tok == "-" {
        None
    } else {
        let mut parts = fw_tok.split(':');
        let knobs = FwKnobs {
            tolerance_bits: unhx_bits(parts.next()?)?,
            max_iters: parts.next()?.parse().ok()?,
            conjugate: match parts.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            },
            restart_period: parts.next()?.parse().ok()?,
            stall_window: parts.next()?.parse().ok()?,
            aon: AonMode::from_name(parts.next()?)?.name(),
        };
        if parts.next().is_some() {
            return None;
        }
        Some(knobs)
    };
    let spec = fields.next()?.to_string();
    let payload = fields.next()?;
    if fields.next().is_some() {
        return None;
    }
    let mut t = Tok::new(payload);
    let profile = match t.next()? {
        "par" => ModelProfile::Parallel {
            level: t.f64()?,
            flows: t.vec()?,
        },
        "fw" => {
            let objective = t.f64()?;
            let rel_gap = t.f64()?;
            let iterations = t.usize()?;
            let converged = match t.next()? {
                "0" => false,
                "1" => true,
                _ => return None,
            };
            let flow = EdgeFlow(t.vec()?);
            let per_tok = t.next()?;
            let per_commodity = if per_tok == "-" {
                Vec::new()
            } else {
                per_tok
                    .split(';')
                    .map(|s| vec_dec(s).map(EdgeFlow))
                    .collect::<Option<Vec<_>>>()?
            };
            // The on-disk record predates the fw/polish iteration split;
            // attribute everything to the FW phase on replay. Telemetry
            // fields never feed a Report, so replays stay bit-identical.
            ModelProfile::Flow(FwResult {
                flow,
                per_commodity,
                objective,
                rel_gap,
                iterations,
                fw_iterations: iterations,
                polish_rounds: 0,
                converged,
            })
        }
        _ => return None,
    };
    t.done()?;
    Some(Record::Profile(
        ProfileKey {
            class,
            spec,
            kind,
            fw,
        },
        profile,
    ))
}

#[cfg(test)]
mod tests {
    use super::super::super::scenario::Scenario;
    use super::super::super::solve::SolveOptions;
    use super::*;

    fn report_of(spec: &str, task: Task) -> (Fingerprint, Report) {
        let sc = Scenario::parse(spec).unwrap();
        let mut options = SolveOptions {
            task,
            ..SolveOptions::default()
        };
        if task == Task::Llf {
            options.alpha = Some(0.5);
        }
        let fp = Fingerprint::of(&sc, &options).unwrap();
        let report = match task {
            Task::Llf => sc.solve().task(task).alpha(0.5).run().unwrap(),
            _ => sc.solve().task(task).run().unwrap(),
        };
        (fp, report)
    }

    #[test]
    fn report_records_round_trip_bit_exactly() {
        for task in Task::ALL {
            // Pricing needs an all-affine instance (a constant link has no
            // pricing equilibrium for best-response to find).
            let spec = if task == Task::Pricing {
                "x+0.2, 2x+0.3"
            } else {
                "x, 2x+0.3, 1.0"
            };
            let (fp, report) = report_of(spec, task);
            let line = encode_report(&fp, &report).unwrap();
            let Some(Record::Report(fp2, report2)) = decode_record(&line) else {
                panic!("{task}: undecodable: {line}");
            };
            assert_eq!(fp, fp2, "{task}");
            assert_eq!(report.to_json(), report2.to_json(), "{task}");
        }
    }

    #[test]
    fn network_report_records_round_trip() {
        let (fp, report) = report_of("nodes=2; 0->1: x; 0->1: 1; demand 0->1: 1", Task::Beta);
        let line = encode_report(&fp, &report).unwrap();
        let Some(Record::Report(fp2, report2)) = decode_record(&line) else {
            panic!("undecodable: {line}");
        };
        assert_eq!(fp, fp2);
        assert_eq!(report.to_json(), report2.to_json());
    }

    #[test]
    fn profile_records_round_trip() {
        let key = ProfileKey {
            class: ScenarioClass::Parallel,
            spec: "x, 1".into(),
            kind: EqKind::Nash,
            fw: None,
        };
        let profile = ModelProfile::Parallel {
            flows: vec![0.25, 0.75],
            level: 1.0 + f64::EPSILON, // an awkward value decimal would mangle
        };
        let line = encode_profile(&key, &profile).unwrap();
        let Some(Record::Profile(key2, profile2)) = decode_record(&line) else {
            panic!("undecodable: {line}");
        };
        assert_eq!(key, key2);
        let (
            ModelProfile::Parallel { flows, level },
            ModelProfile::Parallel {
                flows: f2,
                level: l2,
            },
        ) = (&profile, &profile2)
        else {
            panic!()
        };
        assert_eq!(flows, f2);
        assert_eq!(level.to_bits(), l2.to_bits());

        let fw_key = ProfileKey {
            class: ScenarioClass::Multi,
            spec: "nodes=2; 0->1: x; demand 0->1: 1".into(),
            kind: EqKind::Optimum,
            fw: Some(FwKnobs {
                tolerance_bits: 1e-10f64.to_bits(),
                max_iters: 2000,
                conjugate: true,
                restart_period: 50,
                stall_window: u64::MAX,
                aon: AonMode::Auto.name(),
            }),
        };
        let fw_profile = ModelProfile::Flow(FwResult {
            flow: EdgeFlow(vec![1.0, 0.0]),
            per_commodity: vec![EdgeFlow(vec![0.5, 0.0]), EdgeFlow(vec![0.5, 0.0])],
            objective: 0.123456789,
            rel_gap: 1e-11,
            iterations: 42,
            fw_iterations: 42,
            polish_rounds: 0,
            converged: true,
        });
        let line = encode_profile(&fw_key, &fw_profile).unwrap();
        let Some(Record::Profile(key2, profile2)) = decode_record(&line) else {
            panic!("undecodable: {line}");
        };
        assert_eq!(fw_key, key2);
        let ModelProfile::Flow(r) = profile2 else {
            panic!()
        };
        assert_eq!(r.flow.as_slice(), &[1.0, 0.0]);
        assert_eq!(r.per_commodity.len(), 2);
        assert_eq!(r.iterations, 42);
        assert!(r.converged);
        assert_eq!(r.objective.to_bits(), 0.123456789f64.to_bits());
    }

    #[test]
    fn compact_keeps_newest_record_per_key_and_drops_torn_lines() {
        let (fp, report) = report_of("x, 2x+0.3, 1.0", Task::Beta);
        let line_a = encode_report(&fp, &report).unwrap();
        // A second record under the same key but a different payload — the
        // newest must win.
        let mut doctored = report.clone();
        if let ReportData::Beta(b) = &mut doctored.data {
            b.beta = 0.25;
        }
        let line_b = encode_report(&fp, &doctored).unwrap();
        let (fp2, report2) = report_of("x, 1.0", Task::Equilib);
        let line_c = encode_report(&fp2, &report2).unwrap();
        let dir = std::env::temp_dir().join(format!("sopt-compact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.soptcache");
        std::fs::write(
            &path,
            format!("{HEADER}\n{line_a}\n{line_c}\n{line_b}\nR\ttorn"),
        )
        .unwrap();
        let (before, after) = compact(&path).unwrap();
        assert_eq!((before, after), (4, 2));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Header intact, first-seen key order, newest payload per key.
        assert_eq!(lines, vec![HEADER, line_b.as_str(), line_c.as_str()]);
        // The compacted file still replays: every line decodes.
        for line in &lines[1..] {
            assert!(decode_record(line).is_some());
        }
        // Compacting an already-compact file is a fixpoint.
        assert_eq!(compact(&path).unwrap(), (2, 2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_refuses_a_foreign_header() {
        let dir = std::env::temp_dir().join(format!("sopt-compact-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("not-a-cache");
        std::fs::write(&path, "something else\n").unwrap();
        assert!(matches!(
            compact(&path).unwrap_err(),
            SoptError::Io { context } if context.contains("bad header")
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_and_foreign_records_are_skipped() {
        for bad in [
            "",
            "R",
            "R\tbeta",
            "R\tbeta\tparallel-links\tzz\t00\t1\t1\tstrong\tx, 1\t2 2 00",
            "Q\twhatever",
            "R\tbeta\tparallel-links", // truncated mid-record (torn write)
            "P\tparallel-links\tnash\t-\tx, 1\tpar", // payload cut short
        ] {
            assert!(decode_record(bad).is_none(), "accepted {bad:?}");
        }
    }
}
