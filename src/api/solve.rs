//! [`Solve`] — the builder-style session turning a
//! [`Scenario`](super::Scenario) into a [`Report`](super::Report).

use sopt_core::curve::{anarchy_curve, anarchy_curve_network_with, CurveOracle};
use sopt_core::llf::llf_strategy_for_optimum;
use sopt_core::tolls::{try_marginal_cost_tolls, try_marginal_cost_tolls_network_with_optimum};
use sopt_core::{try_mop_multi_with_optimum, try_mop_with_optimum, try_optop};
use sopt_equilibrium::network::{
    try_induced_multicommodity, try_induced_network, try_network_nash, warm_seed_from,
    warm_seed_from_per,
};
use sopt_equilibrium::parallel::ParallelLinks;
use sopt_network::instance::{MultiCommodityInstance, NetworkInstance};
use sopt_solver::frank_wolfe::{FwOptions, FwResult};

use super::engine::cache::{
    solve_multi_profile, solve_network_profile, solve_profile, EqKind, EqProfile, SubMemo,
};
use super::error::SoptError;
use super::report::{
    BetaReport, CurvePointReport, CurveReport, EquilibReport, LlfReport, Report, ReportData,
    ScenarioSummary, TollsReport,
};
use super::scenario::Scenario;

/// What to compute about a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    /// The price of optimum β and the Leader's optimal strategy
    /// (OpTop / MOP / Theorem 2.1, per scenario class).
    Beta,
    /// The anarchy-value curve `α ↦ ϱ(M, r, α)` (parallel links and s–t
    /// networks; each network α-point is a warm-started induced solve).
    Curve,
    /// Nash and optimum assignments.
    Equilib,
    /// Marginal-cost tolls (single-commodity scenarios).
    Tolls,
    /// The LLF baseline at a given Leader portion (parallel links only).
    Llf,
}

impl Task {
    /// All tasks, in CLI order.
    pub const ALL: [Task; 5] = [
        Task::Beta,
        Task::Curve,
        Task::Equilib,
        Task::Tolls,
        Task::Llf,
    ];

    /// The task's CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Task::Beta => "beta",
            Task::Curve => "curve",
            Task::Equilib => "equilib",
            Task::Tolls => "tolls",
            Task::Llf => "llf",
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Task {
    type Err = SoptError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "beta" => Ok(Task::Beta),
            "curve" => Ok(Task::Curve),
            "equilib" => Ok(Task::Equilib),
            "tolls" => Ok(Task::Tolls),
            "llf" => Ok(Task::Llf),
            other => Err(SoptError::Parse {
                token: other.to_string(),
                reason: "expected one of beta|curve|equilib|tolls|llf".into(),
            }),
        }
    }
}

/// Shared solve knobs ([`Solve`] holds them per scenario,
/// [`super::batch::Batch`] per fleet).
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// What to compute. Default [`Task::Beta`].
    pub task: Task,
    /// Convergence target for iterative (Frank–Wolfe) solves. Default 1e-10.
    pub tolerance: f64,
    /// Leader portion for [`Task::Llf`]; curve crossover checks ignore it.
    pub alpha: Option<f64>,
    /// Curve sample count: α = 0, 1/steps, …, 1. Default 10.
    pub steps: usize,
    /// Iteration cap for iterative solves. Default 2000.
    pub max_iters: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            task: Task::Beta,
            tolerance: 1e-10,
            alpha: None,
            steps: 10,
            max_iters: 2_000,
        }
    }
}

impl SolveOptions {
    fn validate(&self) -> Result<(), SoptError> {
        if !(self.tolerance.is_finite() && self.tolerance > 0.0) {
            return Err(SoptError::InvalidParameter {
                name: "tolerance",
                value: self.tolerance,
                reason: "must be finite and > 0",
            });
        }
        if self.steps == 0 {
            return Err(SoptError::InvalidParameter {
                name: "steps",
                value: 0.0,
                reason: "must be ≥ 1",
            });
        }
        if self.max_iters == 0 {
            return Err(SoptError::InvalidParameter {
                name: "max_iters",
                value: 0.0,
                reason: "must be ≥ 1",
            });
        }
        if let Some(a) = self.alpha {
            if !(0.0..=1.0).contains(&a) {
                return Err(SoptError::InvalidParameter {
                    name: "alpha",
                    value: a,
                    reason: "must lie in [0, 1]",
                });
            }
        }
        Ok(())
    }

    fn fw(&self) -> FwOptions {
        FwOptions {
            rel_gap: self.tolerance,
            max_iters: self.max_iters,
            ..FwOptions::default()
        }
    }
}

/// Implements the shared solver-knob setters for a builder carrying an
/// `options: SolveOptions` field — keeps [`Solve`] and
/// [`super::batch::Batch`] from drifting apart as knobs are added.
macro_rules! impl_solve_knobs {
    ($ty:ty) => {
        impl $ty {
            /// Select the task (default [`Task::Beta`]).
            pub fn task(mut self, task: Task) -> Self {
                self.options.task = task;
                self
            }

            /// Convergence target for iterative solves (default `1e-10`).
            pub fn tolerance(mut self, tolerance: f64) -> Self {
                self.options.tolerance = tolerance;
                self
            }

            /// Leader portion α (required by [`Task::Llf`]).
            pub fn alpha(mut self, alpha: f64) -> Self {
                self.options.alpha = Some(alpha);
                self
            }

            /// Curve sample count (default 10: α = 0, 0.1, …, 1).
            pub fn steps(mut self, steps: usize) -> Self {
                self.options.steps = steps;
                self
            }

            /// Iteration cap for iterative solves (default 2000).
            pub fn max_iters(mut self, max_iters: usize) -> Self {
                self.options.max_iters = max_iters;
                self
            }

            /// Replace the whole knob set at once.
            pub fn options(mut self, options: SolveOptions) -> Self {
                self.options = options;
                self
            }
        }
    };
}
pub(crate) use impl_solve_knobs;

/// A solve session: scenario + knobs, consumed by [`Solve::run`].
///
/// ```
/// use stackopt::api::{Scenario, Task};
///
/// let report = Scenario::parse("x, 1.0")?
///     .solve()
///     .task(Task::Beta)
///     .tolerance(1e-9)
///     .run()?;
/// assert!((report.data.as_beta().unwrap().beta - 0.5).abs() < 1e-9);
/// # Ok::<(), stackopt::api::SoptError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Solve {
    scenario: Scenario,
    options: SolveOptions,
}

impl Solve {
    pub(crate) fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            options: SolveOptions::default(),
        }
    }

    /// Run the task, dispatching to the right algorithm for the scenario
    /// class. Every failure mode is a typed [`SoptError`].
    pub fn run(self) -> Result<Report, SoptError> {
        run_with(self.scenario, &self.options)
    }
}

impl_solve_knobs!(Solve);

/// Shared driver behind [`Solve::run`] and the batch runner.
pub(crate) fn run_with(scenario: Scenario, options: &SolveOptions) -> Result<Report, SoptError> {
    run_with_memo(scenario, options, None)
}

/// [`run_with`] with an optional engine memo handle: Nash/optimum
/// sub-solves of **every** scenario class consult the shared profile table
/// (parallel equalizer profiles, network and multicommodity Frank–Wolfe
/// results keyed additionally by the solver knobs).
pub(crate) fn run_with_memo(
    scenario: Scenario,
    options: &SolveOptions,
    memo: Option<&SubMemo<'_>>,
) -> Result<Report, SoptError> {
    options.validate()?;
    let summary = ScenarioSummary {
        class: scenario.class(),
        task: options.task,
        size: scenario.size(),
        nodes: scenario.nodes(),
        rate: scenario.rate(),
    };
    let data = match &scenario {
        Scenario::Parallel(links) => solve_parallel(links, options, memo)?,
        Scenario::Network(inst) => solve_network(inst, options, &scenario, memo)?,
        Scenario::Multi(inst) => solve_multi(inst, options, &scenario, memo)?,
    };
    Ok(Report {
        scenario: summary,
        data,
    })
}

/// A parallel-link equilibrium, served from the engine's memo table when a
/// handle is present, computed directly otherwise.
fn profile(
    links: &ParallelLinks,
    kind: EqKind,
    memo: Option<&SubMemo<'_>>,
) -> Result<EqProfile, SoptError> {
    match memo {
        Some(m) => m.profile(kind, links),
        None => solve_profile(links, kind),
    }
}

/// A network Nash/optimum profile, memoized when a handle is present.
/// Always solved cold on a miss (see the cache module's determinism note);
/// warm starts apply only to derived, non-memoized solves.
fn net_profile(
    inst: &NetworkInstance,
    kind: EqKind,
    options: &SolveOptions,
    memo: Option<&SubMemo<'_>>,
) -> Result<FwResult, SoptError> {
    let fw = options.fw();
    match memo {
        Some(m) => m.network(kind, inst, &fw),
        None => solve_network_profile(inst, kind, &fw),
    }
}

/// A multicommodity Nash/optimum profile, memoized when a handle is
/// present.
fn multi_profile(
    inst: &MultiCommodityInstance,
    kind: EqKind,
    options: &SolveOptions,
    memo: Option<&SubMemo<'_>>,
) -> Result<FwResult, SoptError> {
    let fw = options.fw();
    match memo {
        Some(m) => m.multi(kind, inst, &fw),
        None => solve_multi_profile(inst, kind, &fw),
    }
}

fn require_alpha(options: &SolveOptions) -> Result<f64, SoptError> {
    options.alpha.ok_or(SoptError::MissingParameter {
        name: "alpha",
        reason: "llf requires an alpha in [0, 1]",
    })
}

fn oracle_name(o: CurveOracle) -> &'static str {
    match o {
        CurveOracle::Exact => "exact",
        CurveOracle::BruteForce => "brute-force",
        CurveOracle::HeuristicUpperBound => "heuristic-upper-bound",
    }
}

fn solve_parallel(
    links: &ParallelLinks,
    options: &SolveOptions,
    memo: Option<&SubMemo<'_>>,
) -> Result<ReportData, SoptError> {
    // Per-task feasibility gates convert M/M/1 saturation into a typed
    // error instead of a panic deep inside an algorithm. Tasks whose
    // internals already propagate typed errors (Beta via try_optop) run
    // without a redundant pre-solve — on a large batch fleet those extra
    // equalizer bisections are pure waste.
    Ok(match options.task {
        Task::Beta => {
            let r = try_optop(links)?;
            let induced_cost = links.try_induced_cost(&r.strategy)?;
            ReportData::Beta(BetaReport {
                beta: r.beta,
                nash_cost: r.nash_cost,
                optimum_cost: r.optimum_cost,
                induced_cost,
                strategy: r.strategy,
                optimum: r.optimum,
                commodity_alphas: vec![],
            })
        }
        Task::Curve => {
            // anarchy_curve calls the panicking internals; gate feasibility
            // of both equilibria first. (The gates hit the engine's
            // equilibrium memo table; computed fresh they are noise next to
            // the per-α strategy solves of the sweep itself.)
            profile(links, EqKind::Nash, memo)?;
            profile(links, EqKind::Optimum, memo)?;
            let alphas: Vec<f64> = (0..=options.steps)
                .map(|k| k as f64 / options.steps as f64)
                .collect();
            let c = anarchy_curve(links, &alphas);
            ReportData::Curve(CurveReport {
                beta: c.beta,
                nash_cost: c.nash_cost,
                optimum_cost: c.optimum_cost,
                points: c
                    .points
                    .iter()
                    .map(|p| CurvePointReport {
                        alpha: p.alpha,
                        cost: p.cost,
                        ratio: p.ratio,
                        oracle: oracle_name(p.oracle),
                    })
                    .collect(),
            })
        }
        Task::Equilib => {
            let (nash_flows, nash_level) = profile(links, EqKind::Nash, memo)?;
            let (optimum_flows, optimum_level) = profile(links, EqKind::Optimum, memo)?;
            ReportData::Equilib(EquilibReport {
                nash_cost: links.cost(&nash_flows),
                nash_flows,
                nash_level: Some(nash_level),
                optimum_cost: links.cost(&optimum_flows),
                optimum_flows,
                optimum_level: Some(optimum_level),
            })
        }
        Task::Tolls => {
            let t = try_marginal_cost_tolls(links)?;
            let tolled_nash = t.tolled.try_nash()?;
            ReportData::Tolls(TollsReport {
                tolled_cost: links.cost(tolled_nash.flows()),
                tolled_nash: tolled_nash.flows().to_vec(),
                tolls: t.tolls,
                optimum: t.optimum,
                revenue: t.revenue,
            })
        }
        Task::Llf => {
            let alpha = require_alpha(options)?;
            // One optimum solve, reused for the strategy and for C(O) —
            // and shared across an α-sweep via the equilibrium memo table.
            let (optimum_flows, _) = profile(links, EqKind::Optimum, memo)?;
            let strategy = llf_strategy_for_optimum(links, &optimum_flows, alpha);
            let cost = links.try_induced_cost(&strategy)?;
            let optimum_cost = links.cost(&optimum_flows);
            ReportData::Llf(LlfReport {
                alpha,
                strategy,
                cost,
                optimum_cost,
                ratio: cost / optimum_cost,
                bound: 1.0 / alpha,
            })
        }
    })
}

fn check_converged(r: &FwResult, what: &'static str) -> Result<(), SoptError> {
    if r.converged {
        Ok(())
    } else {
        Err(SoptError::NotConverged {
            what: what.to_string(),
            rel_gap: r.rel_gap,
        })
    }
}

fn solve_network(
    inst: &NetworkInstance,
    options: &SolveOptions,
    scenario: &Scenario,
    memo: Option<&SubMemo<'_>>,
) -> Result<ReportData, SoptError> {
    let fw = options.fw();
    Ok(match options.task {
        Task::Beta => {
            let optimum = net_profile(inst, EqKind::Optimum, options, memo)?;
            let r = try_mop_with_optimum(inst, &optimum)?;
            let nash = net_profile(inst, EqKind::Nash, options, memo)?;
            // The free flow IS the follower equilibrium the MOP strategy
            // induces (S + T = O), so it seeds the induced solve to
            // near-instant convergence.
            let seed = warm_seed_from(&r.free_flow);
            let follower = try_induced_network(inst, &r.leader, r.leader_value, &fw, Some(&seed))?;
            check_converged(&follower, "induced")?;
            let total: Vec<f64> = r
                .leader
                .as_slice()
                .iter()
                .zip(follower.flow.as_slice())
                .map(|(a, b)| a + b)
                .collect();
            ReportData::Beta(BetaReport {
                beta: r.beta,
                nash_cost: inst.cost(nash.flow.as_slice()),
                optimum_cost: r.optimum_cost,
                induced_cost: inst.cost(&total),
                strategy: r.leader.as_slice().to_vec(),
                optimum: r.optimum.as_slice().to_vec(),
                commodity_alphas: vec![],
            })
        }
        Task::Equilib => {
            let nash = net_profile(inst, EqKind::Nash, options, memo)?;
            let optimum = net_profile(inst, EqKind::Optimum, options, memo)?;
            ReportData::Equilib(EquilibReport {
                nash_cost: inst.cost(nash.flow.as_slice()),
                nash_flows: nash.flow.as_slice().to_vec(),
                nash_level: None,
                optimum_cost: inst.cost(optimum.flow.as_slice()),
                optimum_flows: optimum.flow.as_slice().to_vec(),
                optimum_level: None,
            })
        }
        Task::Curve => {
            // One memoized optimum + Nash anchor for the whole sweep; each
            // α-point's induced solve is seeded from the previous α's
            // follower flow inside `anarchy_curve_network_with`.
            let optimum = net_profile(inst, EqKind::Optimum, options, memo)?;
            let nash = net_profile(inst, EqKind::Nash, options, memo)?;
            let alphas: Vec<f64> = (0..=options.steps)
                .map(|k| k as f64 / options.steps as f64)
                .collect();
            let c = anarchy_curve_network_with(inst, &alphas, &fw, true, &optimum, &nash)?;
            ReportData::Curve(CurveReport {
                beta: c.beta,
                nash_cost: c.nash_cost,
                optimum_cost: c.optimum_cost,
                points: c
                    .points
                    .iter()
                    .map(|p| CurvePointReport {
                        alpha: p.alpha,
                        cost: p.cost,
                        ratio: p.ratio,
                        oracle: oracle_name(p.oracle),
                    })
                    .collect(),
            })
        }
        Task::Tolls => {
            let optimum = net_profile(inst, EqKind::Optimum, options, memo)?;
            let t = try_marginal_cost_tolls_network_with_optimum(inst, &optimum)?;
            // Marginal-cost tolls induce the untolled optimum — seed the
            // tolled Nash with it.
            let seed = warm_seed_from(&optimum.flow);
            let tolled_nash = try_network_nash(&t.tolled, &fw, Some(&seed))?;
            check_converged(&tolled_nash, "tolled nash")?;
            ReportData::Tolls(TollsReport {
                tolled_cost: inst.cost(tolled_nash.flow.as_slice()),
                tolled_nash: tolled_nash.flow.as_slice().to_vec(),
                tolls: t.tolls,
                optimum: t.optimum,
                revenue: t.revenue,
            })
        }
        Task::Llf => {
            return Err(SoptError::Unsupported {
                task: options.task,
                class: scenario.class(),
            })
        }
    })
}

fn solve_multi(
    inst: &MultiCommodityInstance,
    options: &SolveOptions,
    scenario: &Scenario,
    memo: Option<&SubMemo<'_>>,
) -> Result<ReportData, SoptError> {
    let fw = options.fw();
    Ok(match options.task {
        Task::Beta => {
            let optimum = multi_profile(inst, EqKind::Optimum, options, memo)?;
            let r = try_mop_multi_with_optimum(inst, &optimum)?;
            let nash = multi_profile(inst, EqKind::Nash, options, memo)?;
            let values: Vec<f64> = r.commodities.iter().map(|c| c.leader_value).collect();
            // Per-commodity free flows are the follower equilibria the
            // strategy induces — the exact warm seed.
            let seed =
                warm_seed_from_per(r.commodities.iter().map(|c| c.free_flow.clone()).collect());
            let follower =
                try_induced_multicommodity(inst, &r.leader_total, &values, &fw, Some(&seed))?;
            check_converged(&follower, "induced")?;
            let total: Vec<f64> = r
                .leader_total
                .as_slice()
                .iter()
                .zip(follower.flow.as_slice())
                .map(|(a, b)| a + b)
                .collect();
            ReportData::Beta(BetaReport {
                beta: r.beta,
                nash_cost: inst.cost(nash.flow.as_slice()),
                optimum_cost: r.optimum_cost,
                induced_cost: inst.cost(&total),
                strategy: r.leader_total.as_slice().to_vec(),
                optimum: r.optimum_total.as_slice().to_vec(),
                commodity_alphas: r.commodities.iter().map(|c| c.alpha).collect(),
            })
        }
        Task::Equilib => {
            let nash = multi_profile(inst, EqKind::Nash, options, memo)?;
            let optimum = multi_profile(inst, EqKind::Optimum, options, memo)?;
            ReportData::Equilib(EquilibReport {
                nash_cost: inst.cost(nash.flow.as_slice()),
                nash_flows: nash.flow.as_slice().to_vec(),
                nash_level: None,
                optimum_cost: inst.cost(optimum.flow.as_slice()),
                optimum_flows: optimum.flow.as_slice().to_vec(),
                optimum_level: None,
            })
        }
        Task::Curve | Task::Tolls | Task::Llf => {
            return Err(SoptError::Unsupported {
                task: options.task,
                class: scenario.class(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_names_round_trip() {
        for t in Task::ALL {
            assert_eq!(t.name().parse::<Task>().unwrap(), t);
        }
        assert!("betamax".parse::<Task>().is_err());
    }

    #[test]
    fn knob_validation_is_typed() {
        let bad = Scenario::parse("x, 1.0").unwrap().solve().tolerance(-1.0);
        assert!(matches!(
            bad.run().unwrap_err(),
            SoptError::InvalidParameter {
                name: "tolerance",
                ..
            }
        ));
        let bad = Scenario::parse("x, 1.0").unwrap().solve().steps(0);
        assert!(matches!(
            bad.run().unwrap_err(),
            SoptError::InvalidParameter { name: "steps", .. }
        ));
        let bad = Scenario::parse("x, 1.0")
            .unwrap()
            .solve()
            .task(Task::Llf)
            .alpha(1.5);
        assert!(matches!(
            bad.run().unwrap_err(),
            SoptError::InvalidParameter { name: "alpha", .. }
        ));
    }
}
