//! [`Solve`] — the builder-style session turning a
//! [`Scenario`] into a [`Report`].
//!
//! Since PR 5, every task driver here is written once against the
//! [`ScenarioModel`] trait: the only per-class
//! `match` in the session layer is [`Scenario::model`](super::Scenario)
//! handing out the right implementation. Per-class algorithm choices
//! (OpTop vs MOP vs Theorem 2.1, equalizer vs Frank–Wolfe, α-portion
//! policies) live in [`super::model`].

use sopt_core::curve::CurveStrategy;
use sopt_solver::frank_wolfe::FwOptions;
use sopt_solver::AonMode;

use super::engine::cache::SubMemo;
use super::error::SoptError;
use super::model::{EqKind, ModelProfile, ScenarioModel};
use super::report::{BetaReport, Report, ReportData, ScenarioSummary};
use super::scenario::Scenario;

/// What to compute about a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    /// The price of optimum β and the Leader's optimal strategy
    /// (OpTop / MOP / Theorem 2.1, per scenario class).
    Beta,
    /// The anarchy-value curve `α ↦ ϱ(M, r, α)` on every scenario class.
    /// Network and k-commodity α-points are warm-chained induced solves;
    /// k-commodity sweeps honour the weak/strong
    /// [`strategy`](SolveOptions::strategy) split.
    Curve,
    /// Nash and optimum assignments.
    Equilib,
    /// Marginal-cost tolls (every scenario class).
    Tolls,
    /// The LLF baseline at a given Leader portion (parallel links only).
    Llf,
    /// Competitive pricing: the pricing Nash equilibrium on parallel links
    /// (every owner sets a profit-maximizing toll), or the single-price
    /// Stackelberg auction on networks with `[priceable]` edges.
    Pricing,
}

impl Task {
    /// All tasks, in CLI order.
    pub const ALL: [Task; 6] = [
        Task::Beta,
        Task::Curve,
        Task::Equilib,
        Task::Tolls,
        Task::Llf,
        Task::Pricing,
    ];

    /// The task's CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Task::Beta => "beta",
            Task::Curve => "curve",
            Task::Equilib => "equilib",
            Task::Tolls => "tolls",
            Task::Llf => "llf",
            Task::Pricing => "pricing",
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Task {
    type Err = SoptError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "beta" => Ok(Task::Beta),
            "curve" => Ok(Task::Curve),
            "equilib" => Ok(Task::Equilib),
            "tolls" => Ok(Task::Tolls),
            "llf" => Ok(Task::Llf),
            "pricing" => Ok(Task::Pricing),
            other => Err(SoptError::Parse {
                token: other.to_string(),
                reason: "expected one of beta|curve|equilib|tolls|llf|pricing".into(),
            }),
        }
    }
}

/// Shared solve knobs ([`Solve`] holds them per scenario,
/// [`super::batch::Batch`] per fleet).
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// What to compute. Default [`Task::Beta`].
    pub task: Task,
    /// Convergence target for iterative (Frank–Wolfe) solves. Default 1e-10.
    pub tolerance: f64,
    /// Leader portion for [`Task::Llf`]; curve crossover checks ignore it.
    pub alpha: Option<f64>,
    /// Curve sample count: α = 0, 1/steps, …, 1. Default 10.
    pub steps: usize,
    /// Iteration cap for iterative solves. Default 2000.
    pub max_iters: usize,
    /// Weak/strong portion split for k-commodity curve sweeps (ignored by
    /// single-commodity classes, where the two coincide). Default
    /// [`CurveStrategy::Strong`].
    pub strategy: CurveStrategy,
    /// Grid resolution of each firm's best-response price search
    /// ([`Task::Pricing`], non-affine parallel instances). Default 50.
    pub price_steps: usize,
    /// Round budget for pricing best-response dynamics. Default 200.
    pub price_rounds: usize,
    /// Multi-commodity all-or-nothing strategy: origin-grouped one-to-many
    /// Dijkstra, optionally fanned across threads. Default
    /// [`AonMode::Auto`]; [`AonMode::Sequential`] reproduces the
    /// per-commodity query loop for honest A/B.
    pub aon: AonMode,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            task: Task::Beta,
            tolerance: 1e-10,
            alpha: None,
            steps: 10,
            max_iters: 2_000,
            strategy: CurveStrategy::Strong,
            price_steps: 50,
            price_rounds: 200,
            aon: AonMode::Auto,
        }
    }
}

impl SolveOptions {
    fn validate(&self) -> Result<(), SoptError> {
        if !(self.tolerance.is_finite() && self.tolerance > 0.0) {
            return Err(SoptError::InvalidParameter {
                name: "tolerance",
                value: self.tolerance,
                reason: "must be finite and > 0",
            });
        }
        if self.steps == 0 {
            return Err(SoptError::InvalidParameter {
                name: "steps",
                value: 0.0,
                reason: "must be ≥ 1",
            });
        }
        if self.max_iters == 0 {
            return Err(SoptError::InvalidParameter {
                name: "max_iters",
                value: 0.0,
                reason: "must be ≥ 1",
            });
        }
        if self.price_steps < 2 {
            return Err(SoptError::InvalidParameter {
                name: "price_steps",
                value: self.price_steps as f64,
                reason: "must be ≥ 2",
            });
        }
        if self.price_rounds == 0 {
            return Err(SoptError::InvalidParameter {
                name: "price_rounds",
                value: 0.0,
                reason: "must be ≥ 1",
            });
        }
        if let Some(a) = self.alpha {
            if !(0.0..=1.0).contains(&a) {
                return Err(SoptError::InvalidParameter {
                    name: "alpha",
                    value: a,
                    reason: "must lie in [0, 1]",
                });
            }
        }
        Ok(())
    }

    pub(crate) fn fw(&self) -> FwOptions {
        FwOptions {
            rel_gap: self.tolerance,
            max_iters: self.max_iters,
            aon: self.aon,
            ..FwOptions::default()
        }
    }
}

/// Implements the shared solver-knob setters for a builder carrying an
/// `options: SolveOptions` field — keeps [`Solve`] and
/// [`super::batch::Batch`] from drifting apart as knobs are added.
macro_rules! impl_solve_knobs {
    ($ty:ty) => {
        impl $ty {
            /// Select the task (default [`Task::Beta`]).
            pub fn task(mut self, task: Task) -> Self {
                self.options.task = task;
                self
            }

            /// Convergence target for iterative solves (default `1e-10`).
            pub fn tolerance(mut self, tolerance: f64) -> Self {
                self.options.tolerance = tolerance;
                self
            }

            /// Leader portion α (required by [`Task::Llf`]).
            pub fn alpha(mut self, alpha: f64) -> Self {
                self.options.alpha = Some(alpha);
                self
            }

            /// Curve sample count (default 10: α = 0, 0.1, …, 1).
            pub fn steps(mut self, steps: usize) -> Self {
                self.options.steps = steps;
                self
            }

            /// Iteration cap for iterative solves (default 2000).
            pub fn max_iters(mut self, max_iters: usize) -> Self {
                self.options.max_iters = max_iters;
                self
            }

            /// Weak/strong Stackelberg split for k-commodity curve sweeps
            /// (default strong; single-commodity classes coincide).
            pub fn strategy(mut self, strategy: sopt_core::curve::CurveStrategy) -> Self {
                self.options.strategy = strategy;
                self
            }

            /// Grid resolution of the pricing best-response search
            /// (default 50).
            pub fn price_steps(mut self, price_steps: usize) -> Self {
                self.options.price_steps = price_steps;
                self
            }

            /// Round budget for pricing best-response dynamics
            /// (default 200).
            pub fn price_rounds(mut self, price_rounds: usize) -> Self {
                self.options.price_rounds = price_rounds;
                self
            }

            /// Multi-commodity all-or-nothing strategy (default
            /// [`sopt_solver::AonMode::Auto`]; `Sequential` reproduces the
            /// per-commodity query loop).
            pub fn aon(mut self, aon: sopt_solver::AonMode) -> Self {
                self.options.aon = aon;
                self
            }

            /// Replace the whole knob set at once.
            pub fn options(mut self, options: SolveOptions) -> Self {
                self.options = options;
                self
            }
        }
    };
}
pub(crate) use impl_solve_knobs;

/// A solve session: scenario + knobs, consumed by [`Solve::run`].
///
/// ```
/// use stackopt::api::{Scenario, Task};
///
/// let report = Scenario::parse("x, 1.0")?
///     .solve()
///     .task(Task::Beta)
///     .tolerance(1e-9)
///     .run()?;
/// assert!((report.data.as_beta().unwrap().beta - 0.5).abs() < 1e-9);
/// # Ok::<(), stackopt::api::SoptError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Solve {
    scenario: Scenario,
    options: SolveOptions,
}

impl Solve {
    pub(crate) fn new(scenario: Scenario) -> Self {
        Self {
            scenario,
            options: SolveOptions::default(),
        }
    }

    /// Run the task, dispatching through the scenario's
    /// [`ScenarioModel`]. Every failure mode is a typed [`SoptError`].
    pub fn run(self) -> Result<Report, SoptError> {
        run_with(self.scenario, &self.options)
    }
}

impl_solve_knobs!(Solve);

/// Shared driver behind [`Solve::run`] and the batch runner.
pub(crate) fn run_with(scenario: Scenario, options: &SolveOptions) -> Result<Report, SoptError> {
    run_with_memo(scenario, options, None)
}

/// [`run_with`] with an optional engine memo handle: Nash/optimum
/// sub-solves of **every** scenario class consult the shared profile table
/// through the class-polymorphic [`ScenarioModel`] interface.
pub(crate) fn run_with_memo(
    scenario: Scenario,
    options: &SolveOptions,
    memo: Option<&SubMemo<'_>>,
) -> Result<Report, SoptError> {
    options.validate()?;
    let summary = ScenarioSummary {
        class: scenario.class(),
        task: options.task,
        size: scenario.size(),
        nodes: scenario.nodes(),
        rate: scenario.rate(),
    };
    let data = solve_task(scenario.model(), options, memo)?;
    Ok(Report {
        scenario: summary,
        data,
    })
}

/// An equilibrium profile, served from the engine's memo table when a
/// handle is present, computed cold otherwise. Memo entries are always
/// computed cold (see the cache module's determinism note); warm starts
/// apply only to derived, non-memoized solves.
fn profile(
    model: &dyn ScenarioModel,
    kind: EqKind,
    options: &SolveOptions,
    memo: Option<&SubMemo<'_>>,
) -> Result<ModelProfile, SoptError> {
    let fw = options.fw();
    match memo {
        Some(m) => m.profile(kind, model, &fw),
        None => model.solve_profile(kind, &fw),
    }
}

fn require_alpha(options: &SolveOptions) -> Result<f64, SoptError> {
    options.alpha.ok_or(SoptError::MissingParameter {
        name: "alpha",
        reason: "llf requires an alpha in [0, 1]",
    })
}

/// The curve's α grid: 0, 1/steps, …, 1.
fn alpha_grid(steps: usize) -> Vec<f64> {
    (0..=steps).map(|k| k as f64 / steps as f64).collect()
}

/// The class-generic task dispatch. No per-class branches: the
/// [`ScenarioModel`] implementations carry every class-specific decision.
fn solve_task(
    model: &dyn ScenarioModel,
    options: &SolveOptions,
    memo: Option<&SubMemo<'_>>,
) -> Result<ReportData, SoptError> {
    if !model.supports(options.task) {
        return Err(SoptError::Unsupported {
            task: options.task,
            class: model.class(),
        });
    }
    Ok(match options.task {
        Task::Beta => ReportData::Beta(solve_beta(model, options, memo)?),
        Task::Curve => {
            // One memoized optimum + Nash anchor for the whole sweep (they
            // also gate feasibility before the per-α solves); warm chaining
            // between adjacent α points happens inside the model's sweep.
            let optimum = profile(model, EqKind::Optimum, options, memo)?;
            let nash = profile(model, EqKind::Nash, options, memo)?;
            ReportData::Curve(model.anarchy_curve(
                &alpha_grid(options.steps),
                options.strategy,
                &options.fw(),
                &optimum,
                &nash,
            )?)
        }
        Task::Equilib => {
            let nash = profile(model, EqKind::Nash, options, memo)?;
            let optimum = profile(model, EqKind::Optimum, options, memo)?;
            ReportData::Equilib(super::report::EquilibReport {
                nash_cost: model.cost(nash.flows()),
                nash_level: nash.level(),
                nash_flows: nash.flows().to_vec(),
                optimum_cost: model.cost(optimum.flows()),
                optimum_level: optimum.level(),
                optimum_flows: optimum.flows().to_vec(),
            })
        }
        Task::Tolls => {
            let optimum = profile(model, EqKind::Optimum, options, memo)?;
            ReportData::Tolls(model.tolls(&optimum, &options.fw())?)
        }
        Task::Llf => {
            let alpha = require_alpha(options)?;
            // One optimum solve, reused for the strategy and for C(O) —
            // and shared across an α-sweep via the profile memo table.
            let optimum = profile(model, EqKind::Optimum, options, memo)?;
            ReportData::Llf(model.llf(alpha, &optimum)?)
        }
        Task::Pricing => {
            // Network pricing anchors its price candidates on the memoized
            // unpriced Nash; the parallel solvers are equalizer-driven and
            // skip the profile solve entirely.
            let nash = if model.pricing_needs_nash() {
                Some(profile(model, EqKind::Nash, options, memo)?)
            } else {
                None
            };
            ReportData::Pricing(model.pricing(options, nash.as_ref())?)
        }
    })
}

/// The β task: plan (OpTop / MOP / Theorem 2.1), then verify by solving the
/// induced equilibrium the plan's strategy actually produces.
fn solve_beta(
    model: &dyn ScenarioModel,
    options: &SolveOptions,
    memo: Option<&SubMemo<'_>>,
) -> Result<BetaReport, SoptError> {
    let optimum = if model.plan_needs_optimum() {
        Some(profile(model, EqKind::Optimum, options, memo)?)
    } else {
        None
    };
    let plan = model.beta_plan(optimum.as_ref())?;
    let nash_cost = match plan.nash_cost {
        Some(c) => c,
        None => {
            let nash = profile(model, EqKind::Nash, options, memo)?;
            model.cost(nash.flows())
        }
    };
    let induced = model.induced(
        &plan.leader,
        &plan.leader_values,
        &options.fw(),
        plan.induced_seed.as_ref(),
    )?;
    let total: Vec<f64> = plan
        .leader
        .iter()
        .zip(&induced.follower)
        .map(|(a, b)| a + b)
        .collect();
    Ok(BetaReport {
        beta: plan.beta,
        nash_cost,
        optimum_cost: plan.optimum_cost,
        induced_cost: model.cost(&total),
        strategy: plan.leader,
        optimum: plan.optimum,
        commodity_alphas: plan.commodity_alphas,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_names_round_trip() {
        for t in Task::ALL {
            assert_eq!(t.name().parse::<Task>().unwrap(), t);
        }
        assert!("betamax".parse::<Task>().is_err());
    }

    #[test]
    fn knob_validation_is_typed() {
        let bad = Scenario::parse("x, 1.0").unwrap().solve().tolerance(-1.0);
        assert!(matches!(
            bad.run().unwrap_err(),
            SoptError::InvalidParameter {
                name: "tolerance",
                ..
            }
        ));
        let bad = Scenario::parse("x, 1.0").unwrap().solve().steps(0);
        assert!(matches!(
            bad.run().unwrap_err(),
            SoptError::InvalidParameter { name: "steps", .. }
        ));
        let bad = Scenario::parse("x, 1.0")
            .unwrap()
            .solve()
            .task(Task::Llf)
            .alpha(1.5);
        assert!(matches!(
            bad.run().unwrap_err(),
            SoptError::InvalidParameter { name: "alpha", .. }
        ));
    }

    #[test]
    fn curve_runs_on_every_class_with_either_strategy() {
        for spec in [
            "x, 1.0",
            "nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0",
            "nodes=4; 0->1: x; 0->1: 1.0; 2->3: x; 2->3: 1.0; \
             demand 0->1: 1.0; demand 2->3: 1.0",
        ] {
            for strategy in [CurveStrategy::Strong, CurveStrategy::Weak] {
                let report = Scenario::parse(spec)
                    .unwrap()
                    .solve()
                    .task(Task::Curve)
                    .steps(4)
                    .strategy(strategy)
                    .run()
                    .unwrap_or_else(|e| panic!("'{spec}' {strategy}: {e}"));
                let c = report.data.as_curve().unwrap();
                assert_eq!(c.strategy, strategy.name(), "'{spec}'");
                assert_eq!(c.points.len(), 5, "'{spec}'");
                assert!(c.beta.is_finite());
                // The final point always enforces the optimum.
                let last = c.points.last().unwrap();
                assert!((last.ratio - 1.0).abs() < 1e-4, "'{spec}': {}", last.ratio);
            }
        }
    }
}
