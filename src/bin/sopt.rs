//! `sopt` — command-line access to the price of optimum.
//!
//! ```text
//! sopt solve --spec "x, 1.0" --task beta --format json
//! sopt solve --spec "nodes=4; 0->1: x; 0->2: 1.0; 1->2: 0; 1->3: 1.0; 2->3: x; demand 0->3: 1" \
//!            --task beta
//! sopt batch --file scenarios.txt --task beta --format csv [--threads 8]
//! ```
//!
//! `solve` runs one scenario through the [`stackopt::api`] session layer:
//! `--spec` accepts both the parallel-links mini-language (`x, 2x+0.3,
//! mm1:2.0`, optionally `… @ rate`) and the general-network grammar
//! (`nodes=N; A->B: expr; …; demand A->B: r`) documented in
//! [`stackopt::spec`]. `batch` runs one spec per line of `--file` across
//! threads, reporting results in input order.
//!
//! The classic per-task subcommands (`sopt beta --links …`, `curve`,
//! `equilib`, `tolls`, `llf`) remain as thin aliases for
//! `solve --task … --format text`.

use std::process::ExitCode;

use stackopt::api::{parse_batch_file, Batch, Report, Scenario, SoptError, Task};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sopt solve --spec SPEC [options]          solve one scenario
  sopt batch --file PATH [options] [--threads N]
                                            solve one scenario per line of PATH

options:
  --task beta|curve|equilib|tolls|llf       what to compute (default beta)
  --format text|json|csv                    output format (default text)
  --rate R                                  override the routed rate
  --alpha A                                 Leader portion (llf)
  --steps N                                 curve samples (default 10)
  --tolerance E                             solver convergence target
  --max-iters K                             solver iteration cap

legacy aliases (equivalent to solve --task … --format text):
  sopt beta    --links SPEC [--rate R]
  sopt curve   --links SPEC [--rate R] [--steps N]
  sopt equilib --links SPEC [--rate R]
  sopt tolls   --links SPEC [--rate R]
  sopt llf     --links SPEC --alpha A [--rate R]

SPEC is either comma-separated latencies (x | 2x+0.3 | 0.7 | x^3 |
mm1:2.0 | bpr:t0,b,c,p, optionally '… @ rate') or a network spec
('nodes=4; 0->1: x; …; demand 0->3: 2.0').
example: sopt solve --spec 'x, 1.0' --task beta --format json";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

struct Args {
    spec: Option<String>,
    file: Option<String>,
    task: Task,
    format: Format,
    rate: Option<f64>,
    steps: Option<usize>,
    alpha: Option<f64>,
    tolerance: Option<f64>,
    max_iters: Option<usize>,
    threads: Option<usize>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        spec: None,
        file: None,
        task: Task::Beta,
        format: Format::Text,
        rate: None,
        steps: None,
        alpha: None,
        tolerance: None,
        max_iters: None,
        threads: None,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        // Match the flag before demanding its value, so a typo'd or
        // positional last token reports "unknown flag", not a misleading
        // "missing value".
        let value = || {
            args.get(i + 1)
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let value = match flag {
            "--spec" | "--links" | "--file" | "--task" | "--format" | "--rate" | "--steps"
            | "--alpha" | "--tolerance" | "--max-iters" | "--threads" => value()?,
            other => return Err(format!("unknown flag '{other}'")),
        };
        match flag {
            "--spec" | "--links" => out.spec = Some(value.clone()),
            "--file" => out.file = Some(value.clone()),
            "--task" => out.task = value.parse().map_err(|e: SoptError| e.to_string())?,
            "--format" => {
                out.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format '{other}' (text|json|csv)")),
                }
            }
            "--rate" => out.rate = Some(value.parse().map_err(|e| format!("--rate: {e}"))?),
            "--steps" => out.steps = Some(value.parse().map_err(|e| format!("--steps: {e}"))?),
            "--alpha" => out.alpha = Some(value.parse().map_err(|e| format!("--alpha: {e}"))?),
            "--tolerance" => {
                out.tolerance = Some(value.parse().map_err(|e| format!("--tolerance: {e}"))?)
            }
            "--max-iters" => {
                out.max_iters = Some(value.parse().map_err(|e| format!("--max-iters: {e}"))?)
            }
            "--threads" => {
                out.threads = Some(value.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            _ => unreachable!("flag list is matched above"),
        }
        i += 2;
    }
    Ok(out)
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    let mut args = parse_args(rest)?;

    // Legacy aliases: `sopt beta --links …` ≡ `sopt solve --task beta`.
    let cmd = match cmd.as_str() {
        "solve" | "batch" => cmd.as_str(),
        legacy => {
            args.task = legacy
                .parse()
                .map_err(|_| format!("unknown command '{legacy}'"))?;
            "solve"
        }
    };

    match cmd {
        "solve" => {
            let spec = args
                .spec
                .as_deref()
                .ok_or("--spec (or --links) is required")?;
            if args.threads.is_some() {
                return Err("--threads only applies to 'sopt batch'".into());
            }
            if args.file.is_some() {
                return Err("--file only applies to 'sopt batch' (use --spec here)".into());
            }
            let report = solve_one(spec, &args).map_err(|e| e.to_string())?;
            print!("{}", render(&report, args.format));
            Ok(())
        }
        "batch" => {
            let path = args.file.as_deref().ok_or("--file is required")?;
            if args.spec.is_some() {
                return Err("--spec only applies to 'sopt solve' (use --file here)".into());
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
            let mut scenarios = parse_batch_file(&text).map_err(|e| e.to_string())?;
            // --rate applies uniformly, exactly as it does for `solve`.
            if let Some(rate) = args.rate {
                scenarios = scenarios
                    .into_iter()
                    .map(|sc| sc.with_rate(rate))
                    .collect::<Result<_, _>>()
                    .map_err(|e| e.to_string())?;
            }
            let mut batch = Batch::new(scenarios)
                .task(args.task)
                .steps(args.steps.unwrap_or(10));
            if let Some(a) = args.alpha {
                batch = batch.alpha(a);
            }
            if let Some(t) = args.tolerance {
                batch = batch.tolerance(t);
            }
            if let Some(k) = args.max_iters {
                batch = batch.max_iters(k);
            }
            if let Some(n) = args.threads {
                batch = batch.threads(n);
            }
            let reports = batch.run();
            print!("{}", render_batch(&reports, args.format));
            Ok(())
        }
        _ => unreachable!("cmd is normalised above"),
    }
}

fn solve_one(spec: &str, args: &Args) -> Result<Report, SoptError> {
    let mut scenario = Scenario::parse(spec)?;
    if let Some(rate) = args.rate {
        scenario = scenario.with_rate(rate)?;
    }
    let mut solve = scenario
        .solve()
        .task(args.task)
        .steps(args.steps.unwrap_or(10));
    if let Some(a) = args.alpha {
        solve = solve.alpha(a);
    }
    if let Some(t) = args.tolerance {
        solve = solve.tolerance(t);
    }
    if let Some(k) = args.max_iters {
        solve = solve.max_iters(k);
    }
    solve.run()
}

fn render(report: &Report, format: Format) -> String {
    match format {
        Format::Text => report.to_text(),
        Format::Json => {
            let mut j = report.to_json();
            j.push('\n');
            j
        }
        Format::Csv => report.to_csv(),
    }
}

fn render_batch(reports: &[Result<Report, SoptError>], format: Format) -> String {
    let mut out = String::new();
    match format {
        Format::Text => {
            for (i, r) in reports.iter().enumerate() {
                out.push_str(&format!("== scenario {i} ==\n"));
                match r {
                    Ok(rep) => out.push_str(&rep.to_text()),
                    Err(e) => out.push_str(&format!("error: {e}\n")),
                }
            }
        }
        Format::Json => {
            let items: Vec<String> = reports
                .iter()
                .map(|r| match r {
                    Ok(rep) => rep.to_json(),
                    Err(e) => format!(
                        "{{\"error\": {}}}",
                        stackopt::api::report::json_str(&e.to_string())
                    ),
                })
                .collect();
            out.push_str(&format!("[{}]\n", items.join(",\n ")));
        }
        Format::Csv => {
            // One table: shared header (all reports run the same task) with
            // an index column; failed scenarios become comment lines.
            if let Some(first) = reports.iter().find_map(|r| r.as_ref().ok()) {
                out.push_str(&format!("index,{}\n", first.csv_header()));
            }
            for (i, r) in reports.iter().enumerate() {
                match r {
                    Ok(rep) => {
                        for row in rep.csv_rows() {
                            out.push_str(&format!("{i},{row}\n"));
                        }
                    }
                    Err(e) => out.push_str(&format!("# scenario {i} error: {e}\n")),
                }
            }
        }
    }
    out
}
