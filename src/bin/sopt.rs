//! `sopt` — command-line access to the price of optimum.
//!
//! ```text
//! sopt beta     --links "x, 1.0" [--rate 1.0]
//! sopt curve    --links "x+0.1, x+0.5" [--rate 1.0] [--steps 10]
//! sopt equilib  --links "x, 1.0" [--rate 1.0]
//! sopt tolls    --links "x, 1.0" [--rate 1.0]
//! sopt llf      --links "x, 1.0" --alpha 0.4 [--rate 1.0]
//! ```
//!
//! The links spec language is documented in [`stackopt::spec`]
//! (`x`, `2x+0.3`, `0.7`, `x^3`, `mm1:2.0`, `bpr:1,0.15,10,4`).

use std::process::ExitCode;

use stackopt::core::curve::anarchy_curve;
use stackopt::core::llf::llf;
use stackopt::core::optop::optop;
use stackopt::core::tolls::marginal_cost_tolls;
use stackopt::equilibrium::parallel::ParallelLinks;
use stackopt::spec::parse_links;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sopt beta    --links SPEC [--rate R]           minimum Leader portion β_M + strategy
  sopt curve   --links SPEC [--rate R] [--steps N]  anarchy value vs α
  sopt equilib --links SPEC [--rate R]           Nash and optimum assignments
  sopt tolls   --links SPEC [--rate R]           marginal-cost tolls
  sopt llf     --links SPEC --alpha A [--rate R] LLF strategy at portion A

SPEC is comma-separated latencies: x | 2x+0.3 | 0.7 | x^3 | mm1:2.0 | bpr:t0,b,c,p
example: sopt beta --links 'x, 1.0'";

struct Args {
    links: String,
    rate: f64,
    steps: usize,
    alpha: Option<f64>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut links = None;
    let mut rate: f64 = 1.0;
    let mut steps = 10;
    let mut alpha = None;
    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<&String, String> {
            *i += 1;
            args.get(*i - 1)
                .ok_or_else(|| "missing value after flag".to_string())
        };
        match args[i].as_str() {
            "--links" => {
                i += 1;
                links = Some(take(&mut i)?.clone());
            }
            "--rate" => {
                i += 1;
                rate = take(&mut i)?.parse().map_err(|e| format!("--rate: {e}"))?;
            }
            "--steps" => {
                i += 1;
                steps = take(&mut i)?.parse().map_err(|e| format!("--steps: {e}"))?;
            }
            "--alpha" => {
                i += 1;
                alpha = Some(take(&mut i)?.parse().map_err(|e| format!("--alpha: {e}"))?);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let links = links.ok_or("--links is required")?;
    if !(rate > 0.0 && rate.is_finite()) {
        return Err(format!("rate must be positive, got {rate}"));
    }
    Ok(Args {
        links,
        rate,
        steps,
        alpha,
    })
}

fn build(args: &Args) -> Result<ParallelLinks, String> {
    Ok(ParallelLinks::new(parse_links(&args.links)?, args.rate))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    let args = parse_args(rest)?;
    let links = build(&args)?;

    match cmd.as_str() {
        "beta" => {
            let r = optop(&links);
            println!("m        = {}", links.m());
            println!("rate     = {}", links.rate());
            println!("C(N)     = {:.6}", r.nash_cost);
            println!("C(O)     = {:.6}", r.optimum_cost);
            println!("beta     = {:.6}", r.beta);
            println!("strategy = {:?}", r.strategy);
            println!("C(S+T)   = {:.6}", links.induced_cost(&r.strategy));
        }
        "curve" => {
            let alphas: Vec<f64> = (0..=args.steps)
                .map(|k| k as f64 / args.steps as f64)
                .collect();
            let c = anarchy_curve(&links, &alphas);
            println!(
                "beta = {:.6}   C(N)/C(O) = {:.6}",
                c.beta,
                c.nash_cost / c.optimum_cost
            );
            println!("{:>8} {:>12} {:>10}  oracle", "alpha", "C(S+T)", "ratio");
            for p in &c.points {
                println!(
                    "{:>8.3} {:>12.6} {:>10.6}  {:?}",
                    p.alpha, p.cost, p.ratio, p.oracle
                );
            }
        }
        "equilib" => {
            let n = links.nash();
            let o = links.optimum();
            println!("Nash    (latency {:.6}): {:?}", n.level(), n.flows());
            println!("Optimum (marginal {:.6}): {:?}", o.level(), o.flows());
            println!(
                "C(N) = {:.6}   C(O) = {:.6}",
                links.cost(n.flows()),
                links.cost(o.flows())
            );
        }
        "tolls" => {
            let t = marginal_cost_tolls(&links);
            println!("tolls    = {:?}", t.tolls);
            println!("optimum  = {:?}", t.optimum);
            println!("revenue  = {:.6}", t.revenue);
            let tolled_nash = t.tolled.nash();
            println!("tolled Nash = {:?} (≈ optimum)", tolled_nash.flows());
        }
        "llf" => {
            let alpha = args.alpha.ok_or("llf requires --alpha")?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err(format!("--alpha must lie in [0,1], got {alpha}"));
            }
            let (s, cost) = llf(&links, alpha);
            let r = optop(&links);
            println!("strategy = {s:?}");
            println!(
                "C(S+T)   = {cost:.6}   C(O) = {:.6}   ratio = {:.6}",
                r.optimum_cost,
                cost / r.optimum_cost
            );
            println!("bound 1/alpha = {:.6}", 1.0 / alpha);
        }
        other => return Err(format!("unknown command '{other}'")),
    }
    Ok(())
}
