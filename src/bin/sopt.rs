//! `sopt` — command-line access to the price of optimum.
//!
//! ```text
//! sopt solve --spec "x, 1.0" --task beta --format json
//! sopt solve --spec "nodes=4; 0->1: x; 0->2: 1.0; 1->2: 0; 1->3: 1.0; 2->3: x; demand 0->3: 1" \
//!            --task beta
//! sopt batch --file scenarios.txt --task beta --format csv [--threads 8]
//! sopt gen --family mm1 --count 10000 --seed 7 | sopt batch --file - --stream
//! sopt import --format tntp --net city_net.tntp --trips city_trips.tntp | sopt batch --file -
//! sopt serve --stdin --cache /tmp/sopt.cache --threads 4
//! ```
//!
//! `solve` runs one scenario through the [`stackopt::api`] session layer:
//! `--spec` accepts both the parallel-links mini-language (`x, 2x+0.3,
//! mm1:2.0`, optionally `… @ rate`) and the general-network grammar
//! (`nodes=N; A->B: expr; …; demand A->B: r`) documented in
//! [`stackopt::spec`]. `batch` runs one spec per line of `--file` (`-` for
//! stdin) through the [`stackopt::api::engine`] fleet runner: buffered and
//! input-ordered by default, or — with `--stream` — as JSON Lines in the
//! serve response envelope, emitted in completion order, each line carrying
//! its input `index` (schema in the README's Serve section). `gen` emits a
//! batch spec file from the random instance families, the engine's
//! first-party fleet source. `import` converts a network in an external
//! exchange format (currently TNTP, the traffic-assignment benchmark
//! format) into the same batch spec text, so real city instances flow
//! through the identical pipeline.
//!
//! `serve` is the persistent daemon: JSONL requests in, JSONL responses
//! out, over a Unix socket (`--socket PATH`) or the stdin/stdout pipe
//! (`--stdin`). `--cache PATH` backs the memo tables with an append-only
//! log replayed on startup, so a restarted daemon answers previously
//! solved requests bit-identically without recomputing. `cache compact`
//! rewrites such a log offline, dropping torn records and superseded
//! duplicates.
//!
//! The classic per-task subcommands (`sopt beta --links …`, `curve`,
//! `equilib`, `tolls`, `llf`) remain as thin aliases for
//! `solve --task … --format text`.

use std::io::Write;
use std::process::ExitCode;

use sopt_instances::TntpInstance;
use stackopt::api::{
    parse_batch_file, AonMode, CurveStrategy, EngineBuilder, Outcome, Report, Request, Scenario,
    ShedPolicy, SolveRequest, SoptError, Task,
};
use stackopt::fleet::{generate_fleet, Family};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  sopt solve --spec SPEC [options]          solve one scenario
  sopt batch --file PATH [options] [--threads N] [--stream]
                                            solve one scenario per line of PATH
                                            (PATH '-' reads stdin; --stream
                                            emits JSONL as results complete)
  sopt serve (--socket PATH | --stdin) [options] [--threads N]
                                            persistent solve daemon: JSONL
                                            requests in, JSONL responses out
  sopt gen --family F --count N [--seed S] [--size M] [--rate R] [--commodities K]
                                            emit a batch spec file of random
                                            scenarios (F: affine|common-slope|
                                            mixed|mm1|multi|grid; default
                                            seed 0; for grid, --size is the
                                            grid side and --commodities the
                                            demands per instance)
  sopt import --format tntp --net PATH [--trips PATH] [--rate R]
                                            convert a TNTP network (plus
                                            optional trips table) to a batch
                                            spec on stdout; --rate routes
                                            first->last node when no trips
                                            are given (default 1.0)
  sopt cache compact --cache PATH           rewrite a soptcache log in place,
                                            dropping torn records and stale
                                            duplicates (run offline)

options:
  --task beta|curve|equilib|tolls|llf|pricing
                                            what to compute (default beta)
  --format text|json|csv                    output format (default text)
  --rate R                                  override the routed rate
  --alpha A                                 Leader portion (llf)
  --steps N                                 curve samples (default 10)
  --strategy strong|weak                    k-commodity curve portion split
                                            (default strong)
  --tolerance E                             solver convergence target
  --max-iters K                             solver iteration cap
  --price-steps N                           pricing candidate/grid resolution
                                            (default 50)
  --price-rounds K                          pricing best-response round cap
                                            (default 200)
  --aon auto|sequential|grouped|parallel    multi-commodity all-or-nothing
                                            strategy (default auto: group
                                            demands by origin, thread the
                                            fan-out when it pays)
  --cache PATH                              disk-backed memo log, replayed on
                                            startup (solve/batch/serve)
  --report-capacity N / --profile-capacity N
                                            memo table bounds, in entries
  --shed drop|never                         expired-deadline policy (serve;
                                            default drop)
  --metrics                                 record per-phase latency
                                            histograms; serve answers
                                            kind 'metrics' with them and ok
                                            responses carry elapsed_us/
                                            fw_iters (serve; batch --stream
                                            records implicitly)
  --metrics-text                            like --metrics, plus a
                                            Prometheus-style text exposition
                                            on stderr when the serve session
                                            ends

legacy aliases (equivalent to solve --task … --format text):
  sopt beta    --links SPEC [--rate R]
  sopt curve   --links SPEC [--rate R] [--steps N]
  sopt equilib --links SPEC [--rate R]
  sopt tolls   --links SPEC [--rate R]
  sopt llf     --links SPEC --alpha A [--rate R]

SPEC is either comma-separated latencies (x | 2x+0.3 | 0.7 | x^3 |
mm1:2.0 | bpr:t0,b,c,p, optionally '… @ rate') or a network spec
('nodes=4; 0->1: x; …; demand 0->3: 2.0').
example: sopt solve --spec 'x, 1.0' --task beta --format json";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Csv,
}

struct Args {
    spec: Option<String>,
    file: Option<String>,
    task: Task,
    task_set: bool,
    format: Format,
    format_set: bool,
    rate: Option<f64>,
    steps: Option<usize>,
    alpha: Option<f64>,
    tolerance: Option<f64>,
    max_iters: Option<usize>,
    threads: Option<usize>,
    strategy: Option<CurveStrategy>,
    price_steps: Option<usize>,
    price_rounds: Option<usize>,
    aon: Option<AonMode>,
    stream: bool,
    family: Option<Family>,
    count: Option<usize>,
    seed: u64,
    size: Option<usize>,
    commodities: Option<usize>,
    socket: Option<String>,
    use_stdin: bool,
    cache: Option<String>,
    report_capacity: Option<usize>,
    profile_capacity: Option<usize>,
    shed: Option<ShedPolicy>,
    metrics: bool,
    metrics_text: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut out = Args {
        spec: None,
        file: None,
        task: Task::Beta,
        task_set: false,
        format: Format::Text,
        format_set: false,
        rate: None,
        steps: None,
        alpha: None,
        tolerance: None,
        max_iters: None,
        threads: None,
        strategy: None,
        price_steps: None,
        price_rounds: None,
        aon: None,
        stream: false,
        family: None,
        count: None,
        seed: 0,
        size: None,
        commodities: None,
        socket: None,
        use_stdin: false,
        cache: None,
        report_capacity: None,
        profile_capacity: None,
        shed: None,
        metrics: false,
        metrics_text: false,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        // Boolean flags take no value and advance by one.
        if flag == "--stream" {
            out.stream = true;
            i += 1;
            continue;
        }
        if flag == "--stdin" {
            out.use_stdin = true;
            i += 1;
            continue;
        }
        if flag == "--metrics" {
            out.metrics = true;
            i += 1;
            continue;
        }
        if flag == "--metrics-text" {
            out.metrics_text = true;
            i += 1;
            continue;
        }
        // Match the flag before demanding its value, so a typo'd or
        // positional last token reports "unknown flag", not a misleading
        // "missing value".
        let value = || {
            args.get(i + 1)
                .ok_or_else(|| format!("missing value after {flag}"))
        };
        let value = match flag {
            "--spec" | "--links" | "--file" | "--task" | "--format" | "--rate" | "--steps"
            | "--alpha" | "--tolerance" | "--max-iters" | "--threads" | "--strategy"
            | "--price-steps" | "--price-rounds" | "--aon" | "--family" | "--count" | "--seed"
            | "--size" | "--commodities" | "--socket" | "--cache" | "--report-capacity"
            | "--profile-capacity" | "--shed" => value()?,
            other => return Err(format!("unknown flag '{other}'")),
        };
        match flag {
            "--spec" | "--links" => out.spec = Some(value.clone()),
            "--file" => out.file = Some(value.clone()),
            "--task" => {
                out.task = value.parse().map_err(|e: SoptError| e.to_string())?;
                out.task_set = true;
            }
            "--format" => {
                out.format_set = true;
                out.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    other => return Err(format!("unknown format '{other}' (text|json|csv)")),
                }
            }
            "--rate" => out.rate = Some(value.parse().map_err(|e| format!("--rate: {e}"))?),
            "--steps" => out.steps = Some(value.parse().map_err(|e| format!("--steps: {e}"))?),
            "--alpha" => out.alpha = Some(value.parse().map_err(|e| format!("--alpha: {e}"))?),
            "--tolerance" => {
                out.tolerance = Some(value.parse().map_err(|e| format!("--tolerance: {e}"))?)
            }
            "--max-iters" => {
                out.max_iters = Some(value.parse().map_err(|e| format!("--max-iters: {e}"))?)
            }
            "--threads" => {
                out.threads = Some(value.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--strategy" => {
                out.strategy = Some(
                    CurveStrategy::from_name(value)
                        .ok_or_else(|| format!("unknown strategy '{value}' (strong|weak)"))?,
                )
            }
            "--price-steps" => {
                out.price_steps = Some(value.parse().map_err(|e| format!("--price-steps: {e}"))?)
            }
            "--price-rounds" => {
                out.price_rounds = Some(value.parse().map_err(|e| format!("--price-rounds: {e}"))?)
            }
            "--aon" => {
                out.aon = Some(AonMode::from_name(value).ok_or_else(|| {
                    format!("unknown aon mode '{value}' (auto|sequential|grouped|parallel)")
                })?)
            }
            "--family" => out.family = Some(value.parse().map_err(|e: SoptError| e.to_string())?),
            "--count" => out.count = Some(value.parse().map_err(|e| format!("--count: {e}"))?),
            "--seed" => out.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            "--size" => out.size = Some(value.parse().map_err(|e| format!("--size: {e}"))?),
            "--commodities" => {
                out.commodities = Some(value.parse().map_err(|e| format!("--commodities: {e}"))?)
            }
            "--socket" => out.socket = Some(value.clone()),
            "--cache" => out.cache = Some(value.clone()),
            "--report-capacity" => {
                out.report_capacity = Some(
                    value
                        .parse()
                        .map_err(|e| format!("--report-capacity: {e}"))?,
                )
            }
            "--profile-capacity" => {
                out.profile_capacity = Some(
                    value
                        .parse()
                        .map_err(|e| format!("--profile-capacity: {e}"))?,
                )
            }
            "--shed" => {
                out.shed = Some(
                    ShedPolicy::from_name(value)
                        .ok_or_else(|| format!("unknown shed policy '{value}' (drop|never)"))?,
                )
            }
            _ => unreachable!("flag list is matched above"),
        }
        i += 2;
    }
    Ok(out)
}

/// One [`EngineBuilder`] per invocation — every subcommand assembles its
/// threads, cache, persistence, and default solve knobs here, so the CLI,
/// the fleet engine, and the serve daemon cannot drift apart.
fn builder_from(args: &Args) -> EngineBuilder {
    let mut builder = EngineBuilder::new()
        .task(args.task)
        .steps(args.steps.unwrap_or(10));
    if let Some(a) = args.alpha {
        builder = builder.alpha(a);
    }
    if let Some(t) = args.tolerance {
        builder = builder.tolerance(t);
    }
    if let Some(k) = args.max_iters {
        builder = builder.max_iters(k);
    }
    if let Some(st) = args.strategy {
        builder = builder.strategy(st);
    }
    if let Some(p) = args.price_steps {
        builder = builder.price_steps(p);
    }
    if let Some(p) = args.price_rounds {
        builder = builder.price_rounds(p);
    }
    if let Some(a) = args.aon {
        builder = builder.aon(a);
    }
    if let Some(n) = args.threads {
        builder = builder.threads(n);
    }
    if let Some(cap) = args.report_capacity {
        builder = builder.report_capacity(cap);
    }
    if let Some(cap) = args.profile_capacity {
        builder = builder.profile_capacity(cap);
    }
    if let Some(path) = &args.cache {
        builder = builder.persist(path);
    }
    if let Some(policy) = args.shed {
        builder = builder.shed(policy);
    }
    builder
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return Err("no command given".into());
    };
    // `cache` takes a positional subcommand, so it is dispatched before
    // the flag parser (and before the legacy task aliases). `import`
    // reuses `--format` for the *input* format (tntp), which would
    // collide with the output-format flag, so it parses its own flags.
    if cmd == "cache" {
        return run_cache(rest);
    }
    if cmd == "import" {
        return run_import(rest);
    }
    let mut args = parse_args(rest)?;

    // Legacy aliases: `sopt beta --links …` ≡ `sopt solve --task beta`.
    let cmd = match cmd.as_str() {
        "solve" | "batch" | "gen" | "serve" => cmd.as_str(),
        legacy => {
            args.task = legacy
                .parse()
                .map_err(|_| format!("unknown command '{legacy}'"))?;
            "solve"
        }
    };

    match cmd {
        "solve" => {
            let spec = args
                .spec
                .as_deref()
                .ok_or("--spec (or --links) is required")?;
            if args.threads.is_some() {
                return Err("--threads only applies to 'sopt batch' and 'sopt serve'".into());
            }
            if args.file.is_some() {
                return Err("--file only applies to 'sopt batch' (use --spec here)".into());
            }
            if args.metrics || args.metrics_text {
                return Err(
                    "--metrics/--metrics-text only apply to 'sopt serve' (batch --stream \
                     records implicitly)"
                        .into(),
                );
            }
            let report = solve_one(spec, &args).map_err(|e| e.to_string())?;
            print!("{}", render(&report, args.format));
            Ok(())
        }
        "batch" => {
            let path = args.file.as_deref().ok_or("--file is required")?;
            if args.spec.is_some() {
                return Err("--spec only applies to 'sopt solve' (use --file here)".into());
            }
            let text = if path == "-" {
                std::io::read_to_string(std::io::stdin())
                    .map_err(|e| format!("cannot read stdin: {e}"))?
            } else {
                std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?
            };
            let mut scenarios = parse_batch_file(&text).map_err(|e| e.to_string())?;
            // --rate applies uniformly, exactly as it does for `solve`.
            if let Some(rate) = args.rate {
                scenarios = scenarios
                    .into_iter()
                    .map(|sc| sc.with_rate(rate))
                    .collect::<Result<_, _>>()
                    .map_err(|e| e.to_string())?;
            }
            if args.metrics || args.metrics_text {
                return Err(
                    "--metrics/--metrics-text only apply to 'sopt serve'; 'batch --stream' \
                     records metrics implicitly"
                        .into(),
                );
            }
            let builder = builder_from(&args);
            if args.stream {
                // JSONL in completion order, in the serve response
                // envelope: each line carries the protocol version, an id
                // (the input index), and the `index` field itself — the
                // documented alias for input position. Nothing is
                // buffered; write errors (a closed downstream pipe) abort
                // quietly, matching Unix tools.
                // The stream path always records metrics: the per-request
                // latency percentiles join the engine summary on stderr.
                let server = builder.metrics(true).server().map_err(|e| e.to_string())?;
                let requests: Result<Vec<Request>, String> = scenarios
                    .iter()
                    .enumerate()
                    .map(|(i, sc)| {
                        // Fleet scenarios came from spec lines, so the
                        // round trip back to a spec cannot fail.
                        let spec = sc.to_spec().map_err(|e| e.to_string())?;
                        let mut request = Request::solve(
                            i as i64,
                            SolveRequest {
                                spec,
                                ..SolveRequest::default()
                            },
                        );
                        request.index = Some(i);
                        Ok(request)
                    })
                    .collect();
                let stdout = std::io::stdout();
                let mut w = stdout.lock();
                server.run_requests(requests?, |response| {
                    let _ = writeln!(w, "{}", response.to_json());
                });
                let stats = server.stats();
                eprintln!(
                    "engine: {} scenarios, {} delivered, cache {}/{} hits, \
                     eq-profiles {}/{} hits, net-profiles {}/{} hits, \
                     {} evictions, {} steals",
                    stats.scenarios,
                    stats.delivered,
                    stats.cache_hits,
                    stats.cache_hits + stats.cache_misses,
                    stats.eq_hits,
                    stats.eq_hits + stats.eq_misses,
                    stats.net_profile_hits,
                    stats.net_profile_hits + stats.net_profile_misses,
                    stats.profile_evictions + stats.report_evictions,
                    stats.steals
                );
                let snap = server.metrics();
                if let Some(lat) = snap.phase("solve_latency") {
                    if lat.count > 0 {
                        eprintln!(
                            "latency: p50 {} us, p90 {} us, p99 {} us, max {} us \
                             over {} solves",
                            lat.p50(),
                            lat.p90(),
                            lat.p99(),
                            lat.max,
                            lat.count
                        );
                    }
                }
            } else {
                let reports = builder.engine(scenarios).map_err(|e| e.to_string())?.run();
                print!("{}", render_batch(&reports, args.format));
            }
            Ok(())
        }
        "serve" => {
            if args.spec.is_some() || args.file.is_some() || args.stream || args.format_set {
                return Err(
                    "'sopt serve' speaks the request envelope; --spec/--file/--stream/--format \
                     do not apply"
                        .into(),
                );
            }
            let server = builder_from(&args)
                .metrics(args.metrics || args.metrics_text)
                .server()
                .map_err(|e| e.to_string())?;
            match (&args.socket, args.use_stdin) {
                (Some(_), true) | (None, false) => {
                    Err("'sopt serve' needs exactly one of --socket PATH or --stdin".into())
                }
                (None, true) => {
                    let served = server
                        .serve(
                            std::io::BufReader::new(std::io::stdin()),
                            std::io::stdout().lock(),
                        )
                        .map_err(|e| e.to_string());
                    if args.metrics_text {
                        eprint!("{}", server.metrics().to_text());
                    }
                    served
                }
                (Some(path), false) => {
                    #[cfg(unix)]
                    {
                        server
                            .serve_socket(std::path::Path::new(path))
                            .map_err(|e| e.to_string())
                    }
                    #[cfg(not(unix))]
                    {
                        let _ = path;
                        Err("--socket requires a Unix platform; use --stdin".into())
                    }
                }
            }
        }
        "gen" => {
            let family = args
                .family
                .ok_or("--family is required (affine|common-slope|mixed|mm1|multi|grid)")?;
            let count = args.count.ok_or("--count is required")?;
            // Reject every solve/batch flag instead of silently ignoring
            // it — these almost always belong to the downstream `batch`.
            if args.stream
                || args.task_set
                || args.format_set
                || args.file.is_some()
                || args.spec.is_some()
                || args.steps.is_some()
                || args.alpha.is_some()
                || args.tolerance.is_some()
                || args.max_iters.is_some()
                || args.threads.is_some()
                || args.strategy.is_some()
                || args.price_steps.is_some()
                || args.price_rounds.is_some()
                || args.aon.is_some()
                || args.socket.is_some()
                || args.use_stdin
                || args.cache.is_some()
                || args.report_capacity.is_some()
                || args.profile_capacity.is_some()
                || args.shed.is_some()
                || args.metrics
                || args.metrics_text
            {
                return Err(
                    "'sopt gen' takes --family/--count/--seed/--size/--rate/--commodities only"
                        .into(),
                );
            }
            let text = generate_fleet(
                family,
                count,
                args.seed,
                args.size,
                args.rate.unwrap_or(1.0),
                args.commodities,
            )
            .map_err(|e| e.to_string())?;
            print!("{text}");
            Ok(())
        }
        _ => unreachable!("cmd is normalised above"),
    }
}

/// `sopt cache compact --cache PATH` — one-shot offline compaction of a
/// soptcache log: torn records and stale duplicates are dropped, the file
/// is replaced atomically, and the before/after record counts are
/// printed.
fn run_cache(rest: &[String]) -> Result<(), String> {
    let Some((sub, rest)) = rest.split_first() else {
        return Err("'sopt cache' needs a subcommand (compact)".into());
    };
    if sub != "compact" {
        return Err(format!("unknown cache subcommand '{sub}' (compact)"));
    }
    let args = parse_args(rest)?;
    let Some(path) = args.cache.as_deref() else {
        return Err("'sopt cache compact' needs --cache PATH".into());
    };
    if args.spec.is_some() || args.file.is_some() || args.task_set || args.format_set {
        return Err("'sopt cache compact' takes --cache PATH only".into());
    }
    let (before, after) =
        stackopt::api::compact_cache(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    println!("compacted '{path}': {before} records -> {after}");
    Ok(())
}

/// `sopt import --format tntp --net PATH [--trips PATH] [--rate R]` —
/// converts a TNTP network (and optional trips table) into batch spec
/// text on stdout, ready for `sopt batch --file -`. A network with no
/// trips gets one first-node → last-node demand at `--rate` (default
/// 1.0); a one-pair trips table becomes a single-commodity spec, more
/// pairs a multicommodity one.
fn run_import(rest: &[String]) -> Result<(), String> {
    let mut format: Option<String> = None;
    let mut net: Option<String> = None;
    let mut trips: Option<String> = None;
    let mut rate: Option<f64> = None;
    let mut i = 0;
    while i < rest.len() {
        let flag = rest[i].as_str();
        let value = rest
            .get(i + 1)
            .ok_or_else(|| format!("missing value after {flag}"))?;
        match flag {
            "--format" => format = Some(value.clone()),
            "--net" => net = Some(value.clone()),
            "--trips" => trips = Some(value.clone()),
            "--rate" => rate = Some(value.parse().map_err(|e| format!("--rate: {e}"))?),
            other => {
                return Err(format!(
                    "unknown flag '{other}' ('sopt import' takes --format/--net/--trips/--rate)"
                ))
            }
        }
        i += 2;
    }
    match format.as_deref() {
        Some("tntp") => {}
        Some(other) => return Err(format!("unknown import format '{other}' (tntp)")),
        None => return Err("--format tntp is required".into()),
    }
    let net_path = net.ok_or("--net PATH is required")?;
    // Streamed, not slurped: city-scale TNTP files flow through one
    // buffered line at a time.
    let open = |p: &str| {
        std::fs::File::open(p)
            .map(std::io::BufReader::new)
            .map_err(|e| format!("cannot read '{p}': {e}"))
    };
    let net_file = open(&net_path)?;
    let trips_file = match &trips {
        Some(p) => Some(open(p)?),
        None => None,
    };
    let network = sopt_instances::parse_tntp_readers(net_file, trips_file)
        .map_err(|e| format!("{net_path}: {e}"))?;
    let (nodes, edges, pairs) = (
        network.graph.num_nodes(),
        network.graph.num_edges(),
        network.demands.len(),
    );
    let scenario: Scenario = match network
        .into_instance(rate.unwrap_or(1.0))
        .map_err(|e| format!("{net_path}: {e}"))?
    {
        TntpInstance::Single(inst) => Scenario::from(inst),
        TntpInstance::Multi(inst) => Scenario::from(inst),
    };
    let spec = scenario.to_spec().map_err(|e| e.to_string())?;
    println!(
        "# sopt import --format tntp --net {net_path}{}: {nodes} nodes, {edges} edges, {} od pairs",
        match &trips {
            Some(p) => format!(" --trips {p}"),
            None => String::new(),
        },
        // No trips table means the fallback demand was synthesised.
        pairs.max(1)
    );
    println!("{spec}");
    Ok(())
}

/// Solves one scenario through the serve envelope — the CLI is a
/// [`Server::handle`](stackopt::api::Server::handle) client of one
/// request, so `solve`, `batch --stream`, and the daemon share one path.
fn solve_one(spec: &str, args: &Args) -> Result<Report, SoptError> {
    let server = builder_from(args).threads(1).server()?;
    let request = Request::solve(
        "cli",
        SolveRequest {
            spec: spec.to_string(),
            rate: args.rate,
            ..SolveRequest::default()
        },
    );
    match server.handle(request).outcome {
        Outcome::Ok(report) => Ok(report),
        Outcome::Err(e) => Err(e),
        other => unreachable!("no deadline, no stats request: {other:?}"),
    }
}

fn render(report: &Report, format: Format) -> String {
    match format {
        Format::Text => report.to_text(),
        Format::Json => {
            let mut j = report.to_json();
            j.push('\n');
            j
        }
        Format::Csv => report.to_csv(),
    }
}

fn render_batch(reports: &[Result<Report, SoptError>], format: Format) -> String {
    let mut out = String::new();
    match format {
        Format::Text => {
            for (i, r) in reports.iter().enumerate() {
                out.push_str(&format!("== scenario {i} ==\n"));
                match r {
                    Ok(rep) => out.push_str(&rep.to_text()),
                    Err(e) => out.push_str(&format!("error: {e}\n")),
                }
            }
        }
        Format::Json => {
            let items: Vec<String> = reports
                .iter()
                .map(|r| match r {
                    Ok(rep) => rep.to_json(),
                    Err(e) => format!(
                        "{{\"error\": {}}}",
                        stackopt::api::report::json_str(&e.to_string())
                    ),
                })
                .collect();
            out.push_str(&format!("[{}]\n", items.join(",\n ")));
        }
        Format::Csv => {
            // One table: shared header (all reports run the same task) with
            // an index column; failed scenarios become comment lines.
            if let Some(first) = reports.iter().find_map(|r| r.as_ref().ok()) {
                out.push_str(&format!("index,{}\n", first.csv_header()));
            }
            for (i, r) in reports.iter().enumerate() {
                match r {
                    Ok(rep) => {
                        for row in rep.csv_rows() {
                            out.push_str(&format!("{i},{row}\n"));
                        }
                    }
                    Err(e) => out.push_str(&format!("# scenario {i} error: {e}\n")),
                }
            }
        }
    }
    out
}
