//! Fleet generation: batch spec files from the random instance families.
//!
//! The engine needs fleets to chew on; this module turns the
//! [`sopt_instances::random`] generators into *batch spec files* — one
//! scenario spec per line, parseable by
//! [`parse_batch_file`](crate::api::parse_batch_file) — so `sopt gen … |
//! sopt batch --file - --stream` is a complete pipeline with no hand-written
//! inputs. Only spec-representable families are offered (every generated
//! scenario survives the `to_spec` → `parse` round trip, so engine cache
//! fingerprints cover the whole fleet).
//!
//! Generation is deterministic: scenario `i` of a fleet seeded `s` draws
//! its instance from seed `s + i` and (when `--size` is not pinned) its
//! link count from a splitmix-style hash of `(s, i)` — the same
//! `(family, count, seed, size, rate)` tuple always emits the same file.

use crate::api::{Scenario, SoptError};
use sopt_instances::random::{
    try_random_affine, try_random_common_slope, try_random_mm1, try_random_multicommodity,
    try_random_spec_mixed,
};
use sopt_instances::{try_grid_city, try_grid_city_multi};

/// A spec-representable random instance family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Independent affine links (`random_affine`).
    Affine,
    /// Common-slope affine links — the Theorem 2.4 class
    /// (`random_common_slope`).
    CommonSlope,
    /// Mixed representable families: affine, monomial, M/M/1, BPR,
    /// constant (`random_spec_mixed`).
    Mixed,
    /// M/M/1 links with feasible random capacities (`random_mm1`).
    Mm1,
    /// Layered k-commodity networks with affine latencies
    /// (`random_multicommodity`); layer depth and commodity count vary
    /// deterministically per scenario, `--size` pins the layer width.
    Multi,
    /// Deterministic city grids with BPR streets and a corner-to-corner
    /// demand (`grid_city`); `--size` pins the grid side (default sides
    /// vary in 2..=10, so edges vary in 8..=360). `--commodities K` swaps
    /// the single demand for a deterministic K-demand OD matrix sharing at
    /// most 16 origins (`try_grid_city_multi`) — the origin-grouped AON
    /// workload. Oversized sides are a typed error, never a panic.
    Grid,
}

impl Family {
    /// All families, in CLI order.
    pub const ALL: [Family; 6] = [
        Family::Affine,
        Family::CommonSlope,
        Family::Mixed,
        Family::Mm1,
        Family::Multi,
        Family::Grid,
    ];

    /// The family's CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Family::Affine => "affine",
            Family::CommonSlope => "common-slope",
            Family::Mixed => "mixed",
            Family::Mm1 => "mm1",
            Family::Multi => "multi",
            Family::Grid => "grid",
        }
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Family {
    type Err = SoptError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "affine" => Ok(Family::Affine),
            "common-slope" => Ok(Family::CommonSlope),
            "mixed" => Ok(Family::Mixed),
            "mm1" => Ok(Family::Mm1),
            "multi" => Ok(Family::Multi),
            "grid" => Ok(Family::Grid),
            other => Err(SoptError::Parse {
                token: other.to_string(),
                reason: "expected one of affine|common-slope|mixed|mm1|multi|grid".into(),
            }),
        }
    }
}

/// Link counts drawn when `size` is not pinned: `2..=10`.
const SIZE_MIN: u64 = 2;
const SIZE_SPAN: u64 = 9;

/// SplitMix64 finalizer — a deterministic, dependency-free way to derive
/// per-scenario link counts from `(seed, index)`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates a `count`-scenario fleet of `family` instances as a batch spec
/// file (header comment + one spec line per scenario).
///
/// * `seed` — fleet seed; scenario `i` uses instance seed `seed + i`.
/// * `size` — pin every scenario to this many links, or `None` to vary
///   sizes deterministically in `2..=10`.
/// * `rate` — total routed rate of every scenario (must be finite, `> 0`).
/// * `commodities` — for the `grid` family, emit a `K`-demand OD matrix
///   per scenario instead of the corner-to-corner demand; a typed error
///   for every other family (their commodity structure is fixed).
pub fn generate_fleet(
    family: Family,
    count: usize,
    seed: u64,
    size: Option<usize>,
    rate: f64,
    commodities: Option<usize>,
) -> Result<String, SoptError> {
    if count == 0 {
        return Err(SoptError::InvalidParameter {
            name: "count",
            value: 0.0,
            reason: "must be ≥ 1",
        });
    }
    if let Some(k) = commodities {
        if family != Family::Grid {
            return Err(SoptError::InvalidParameter {
                name: "commodities",
                value: k as f64,
                reason: "--commodities applies to --family grid only",
            });
        }
    }
    let mut out = format!(
        "# sopt gen --family {family} --count {count} --seed {seed}{}{}{}\n",
        match size {
            Some(m) => format!(" --size {m}"),
            None => String::new(),
        },
        if rate == 1.0 {
            String::new()
        } else {
            format!(" --rate {rate}")
        },
        match commodities {
            Some(k) => format!(" --commodities {k}"),
            None => String::new(),
        }
    );
    for i in 0..count {
        let m = size.unwrap_or_else(|| (SIZE_MIN + mix(seed ^ (i as u64)) % SIZE_SPAN) as usize);
        let instance_seed = seed.wrapping_add(i as u64);
        let scenario = match family {
            Family::Affine => Scenario::from(try_random_affine(m, rate, instance_seed)?),
            Family::CommonSlope => Scenario::from(try_random_common_slope(m, rate, instance_seed)?),
            Family::Mixed => Scenario::from(try_random_spec_mixed(m, rate, instance_seed)?),
            Family::Mm1 => Scenario::from(try_random_mm1(m, rate, instance_seed)?),
            Family::Multi => {
                // Shape varies deterministically with the same hash stream
                // the sizes use: 1–3 layers, 2–3 commodities; `--size` (or
                // the drawn size) pins the layer width, clamped so tiny
                // fleets stay connected and big ones stay solvable.
                let h = mix(seed ^ (i as u64) ^ 0x6d75_6c74_6963_6f6d);
                let layers = 1 + (h % 3) as usize;
                let k = 2 + ((h >> 8) % 2) as usize;
                let width = m.clamp(2, 5);
                Scenario::from(try_random_multicommodity(
                    layers,
                    width,
                    k,
                    rate,
                    instance_seed,
                )?)
            }
            Family::Grid => {
                // `--size` (or the drawn size, always ≥ 2) is the grid
                // *side*; the generator rejects undersized and oversized
                // sides with typed errors instead of overflowing node ids.
                match commodities {
                    Some(k) => Scenario::from(try_grid_city_multi(m, rate, k, instance_seed)?),
                    None => Scenario::from(try_grid_city(m, rate, instance_seed)?),
                }
            }
        };
        let spec = scenario.to_spec()?;
        out.push_str(&spec);
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::parse_batch_file;

    #[test]
    fn family_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(f.name().parse::<Family>().unwrap(), f);
        }
        assert!("pigou".parse::<Family>().is_err());
    }

    #[test]
    fn every_family_emits_a_parseable_fleet() {
        for f in Family::ALL {
            let text = generate_fleet(f, 8, 42, None, 1.0, None).unwrap();
            let scenarios = parse_batch_file(&text).unwrap_or_else(|e| panic!("{f}: {e}"));
            assert_eq!(scenarios.len(), 8, "{f}");
            // Round-trip-representable by construction.
            for sc in &scenarios {
                sc.to_spec().unwrap_or_else(|e| panic!("{f}: {e}"));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = generate_fleet(Family::Mixed, 6, 7, None, 2.0, None).unwrap();
        let b = generate_fleet(Family::Mixed, 6, 7, None, 2.0, None).unwrap();
        assert_eq!(a, b);
        let c = generate_fleet(Family::Mixed, 6, 8, None, 2.0, None).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn size_pins_and_varies() {
        let pinned = generate_fleet(Family::Affine, 5, 1, Some(3), 1.0, None).unwrap();
        for sc in parse_batch_file(&pinned).unwrap() {
            assert_eq!(sc.size(), 3);
        }
        let varied = generate_fleet(Family::Affine, 20, 1, None, 1.0, None).unwrap();
        let sizes: std::collections::HashSet<usize> = parse_batch_file(&varied)
            .unwrap()
            .iter()
            .map(Scenario::size)
            .collect();
        assert!(sizes.len() > 1, "sizes never varied: {sizes:?}");
        assert!(sizes.iter().all(|&m| (2..=10).contains(&m)), "{sizes:?}");
    }

    #[test]
    fn invalid_parameters_are_typed() {
        assert!(matches!(
            generate_fleet(Family::Affine, 0, 1, None, 1.0, None).unwrap_err(),
            SoptError::InvalidParameter { name: "count", .. }
        ));
        assert!(matches!(
            generate_fleet(Family::Affine, 3, 1, None, -1.0, None).unwrap_err(),
            SoptError::InvalidParameter { name: "rate", .. }
        ));
        assert!(matches!(
            generate_fleet(Family::Affine, 3, 1, Some(0), 1.0, None).unwrap_err(),
            SoptError::InvalidParameter { name: "m", .. }
        ));
    }

    #[test]
    fn grid_family_is_deterministic_and_bounded() {
        let a = generate_fleet(Family::Grid, 3, 9, Some(4), 1.0, None).unwrap();
        let b = generate_fleet(Family::Grid, 3, 9, Some(4), 1.0, None).unwrap();
        assert_eq!(a, b);
        for sc in parse_batch_file(&a).unwrap() {
            assert_eq!(sc.size(), 48); // 4·side·(side−1) edges at side 4
        }
        // Oversized sides are a typed error, not a panic or an id overflow.
        assert!(matches!(
            generate_fleet(Family::Grid, 1, 9, Some(40_000), 1.0, None).unwrap_err(),
            SoptError::InvalidParameter { name: "side", .. }
        ));
        assert!(matches!(
            generate_fleet(Family::Grid, 1, 9, Some(1), 1.0, None).unwrap_err(),
            SoptError::InvalidParameter { name: "side", .. }
        ));
    }

    #[test]
    fn grid_commodities_emit_multicommodity_scenarios() {
        let text = generate_fleet(Family::Grid, 3, 5, Some(4), 2.0, Some(6)).unwrap();
        assert!(text.starts_with("# sopt gen --family grid"), "{text}");
        assert!(text.contains("--commodities 6"), "{text}");
        let scenarios = parse_batch_file(&text).unwrap();
        assert_eq!(scenarios.len(), 3);
        for sc in &scenarios {
            assert!(matches!(sc, Scenario::Multi(_)), "expected k-commodity");
            sc.to_spec().unwrap();
        }
        // Deterministic, and --commodities is grid-only.
        let again = generate_fleet(Family::Grid, 3, 5, Some(4), 2.0, Some(6)).unwrap();
        assert_eq!(text, again);
        assert!(matches!(
            generate_fleet(Family::Affine, 3, 5, Some(4), 2.0, Some(6)).unwrap_err(),
            SoptError::InvalidParameter {
                name: "commodities",
                ..
            }
        ));
    }

    #[test]
    fn generated_fleets_solve() {
        let text = generate_fleet(Family::Mm1, 4, 11, Some(3), 1.0, None).unwrap();
        let scenarios = parse_batch_file(&text).unwrap();
        for r in crate::api::Engine::new(scenarios).run() {
            r.unwrap();
        }
    }
}
