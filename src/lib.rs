//! # stackopt — The Price of Optimum in Stackelberg Routing Games
//!
//! A faithful, production-grade Rust reproduction of
//!
//! > A.C. Kaporis, P.G. Spirakis, *The price of optimum in Stackelberg games
//! > on arbitrary single commodity networks and latency functions*,
//! > SPAA 2006, pp. 19–28; journal version TCS 410 (2009) 745–755.
//!
//! The public entry point is the [`api`] session layer — one uniform
//! `Scenario` → `Solve` → `Report` pipeline over every instance class and
//! task, with typed errors and serializable reports. The facade also
//! re-exports the whole workspace for algorithm-level work:
//!
//! * [`api`] — `Scenario` (all three instance classes), the builder-style
//!   `Solve` session, typed `Report`s with JSON/CSV/text serializers, the
//!   single `SoptError` enum, and the streaming, work-stealing, memoizing
//!   fleet `engine` (with `batch` as its buffered compatibility wrapper);
//! * [`fleet`] — deterministic fleet generation from the random instance
//!   families (the `sopt gen` backend);
//! * [`spec`] — the text spec language: parallel-links lists (`"x, 1.0"`)
//!   and general networks (`"nodes=4; 0->1: x; …; demand 0->3: 2"`);
//! * [`latency`] — load-dependent latency functions (affine, polynomial,
//!   monomial, M/M/1, BPR, constants, shifts);
//! * [`network`] — directed multigraphs, parallel-link systems, flows,
//!   shortest paths (Dijkstra), max-flow (Dinic), instances;
//! * [`solver`] — convex flow solvers: the parallel-link equalizer and the
//!   Frank-Wolfe family for general networks;
//! * [`equilibrium`] — Nash (Wardrop) equilibria, system optima, induced
//!   equilibria under Stackelberg strategies, and certificates;
//! * [`core`] — the paper's algorithms: `OpTop`, `MOP` (single and
//!   multi-commodity), the Theorem 2.4 polynomial-time optimal strategy for
//!   common-slope linear links, plus LLF/SCALE/brute-force baselines;
//! * [`instances`] — every canonical instance from the paper's figures and
//!   the random/M-M-1/hard families used by the experiments.
//!
//! ## Quickstart
//!
//! ```
//! use stackopt::prelude::*;
//!
//! // Pigou's example (paper Figs. 1-3): ℓ1(x) = x, ℓ2(x) ≡ 1, r = 1.
//! // The price of optimum: the Leader needs exactly half the flow.
//! let report = Scenario::parse("x, 1.0")?.solve().task(Task::Beta).run()?;
//! let beta = report.data.as_beta().unwrap();
//! assert!((beta.nash_cost - 1.0).abs() < 1e-9); // C(N) = 1
//! assert!((beta.optimum_cost - 0.75).abs() < 1e-9); // C(O) = 3/4
//! assert!((beta.beta - 0.5).abs() < 1e-9);
//!
//! // The algorithm surface remains available for custom pipelines.
//! let links = ParallelLinks::new(vec![LatencyFn::identity(), LatencyFn::constant(1.0)], 1.0);
//! assert!((optop(&links).beta - 0.5).abs() < 1e-9);
//! # Ok::<(), SoptError>(())
//! ```

pub use sopt_core as core;
pub use sopt_equilibrium as equilibrium;
pub use sopt_instances as instances;
pub use sopt_latency as latency;
pub use sopt_network as network;
pub use sopt_obs as obs;
pub use sopt_pricing as pricing;
pub use sopt_solver as solver;

pub mod api;
pub mod fleet;
pub mod spec;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use crate::api::{
        Batch, Engine, EngineStats, Report, ReportData, Scenario, ScenarioClass, Solve, SolveCache,
        SoptError, Task,
    };
    pub use sopt_core::linear_optimal::linear_optimal_strategy;
    pub use sopt_core::llf::llf_strategy;
    pub use sopt_core::mop::mop;
    pub use sopt_core::optop::optop;
    pub use sopt_core::scale::scale_strategy;
    pub use sopt_core::strategy::{induced_cost, ParallelStrategy};
    pub use sopt_equilibrium::network::{network_nash, network_optimum};
    pub use sopt_equilibrium::parallel::{ParallelLinks, ParallelProfile};
    pub use sopt_latency::{Affine, Bpr, Constant, Latency, LatencyFn, Monomial, Polynomial, MM1};
    pub use sopt_network::graph::{DiGraph, EdgeId, NodeId};
    pub use sopt_network::instance::{MultiCommodityInstance, NetworkInstance};
}
