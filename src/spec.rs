//! Text specifications for instances — the input language of the CLI and
//! of [`crate::api::Scenario::parse`].
//!
//! ## Parallel-links specs
//!
//! A *links spec* is a comma-separated list of latency expressions with an
//! optional `@ rate` suffix (rate defaults to 1):
//!
//! | form | meaning |
//! |---|---|
//! | `x` | `ℓ(x) = x` |
//! | `2.5x` | `ℓ(x) = 2.5·x` |
//! | `2x+0.3` | `ℓ(x) = 2x + 0.3` |
//! | `0.7` | `ℓ ≡ 0.7` |
//! | `x^3`, `2x^4`, `x^3+0.5` | monomials, optionally with an offset |
//! | `mm1:2.0` | M/M/1 with capacity 2 |
//! | `bpr:1,0.15,10,4` | BPR `t₀(1 + b(x/c)^p)` |
//!
//! Example: `"x, 1.0"` is Pigou's network; `"x, 1.0 @ 2"` routes rate 2.
//! Whitespace is allowed around commas and `+`, but not inside a token:
//! `2 x` and `x ^2` are rejected with an error naming the token.
//!
//! ## Network specs
//!
//! A *network spec* is a `;`-separated statement list describing an
//! arbitrary directed network with one or more demands:
//!
//! ```text
//! nodes=4; 0->1: x; 0->2: 1.0; 1->3: 1.0; 2->3: x; demand 0->3: 1.0
//! ```
//!
//! * `nodes=N` — declares vertices `0..N`; must come first;
//! * `A->B: EXPR` — a directed edge with a latency expression (parallel
//!   edges allowed, self-loops rejected). A trailing `[priceable]` marker
//!   (`0->1: x [priceable]`) nominates the edge for the Stackelberg
//!   pricing task (`--task pricing`);
//! * `demand A->B: R` — routes rate `R` from `A` to `B`. One demand makes
//!   a single-commodity instance; several make a multicommodity one.
//!
//! [`format_latency`]/[`format_links`] invert the parsers for every
//! expressible latency family, so specs round-trip exactly.
//!
//! All errors are [`SoptError::Parse`] values naming the offending token.

use sopt_latency::LatencyFn;
use sopt_network::graph::{DiGraph, NodeId};
use sopt_network::instance::Commodity;

use crate::api::SoptError;

fn perr(token: impl Into<String>, reason: impl Into<String>) -> SoptError {
    SoptError::Parse {
        token: token.into(),
        reason: reason.into(),
    }
}

/// Parse a numeric parameter, rejecting the non-finite spellings Rust's
/// f64 parser accepts (`inf`, `nan`, …) — the latency constructors panic
/// on them, and the session API promises typed errors instead.
fn parse_finite(token: &str, what: &str, whole: &str) -> Result<f64, SoptError> {
    let v: f64 = token
        .parse()
        .map_err(|e| perr(whole, format!("{what} '{token}': {e}")))?;
    if !v.is_finite() {
        return Err(perr(whole, format!("{what} '{token}' must be finite")));
    }
    Ok(v)
}

/// Parse a single latency expression. Errors name the offending token.
pub fn parse_latency(s: &str) -> Result<LatencyFn, SoptError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(perr(s, "empty latency expression"));
    }
    if let Some(rest) = s.strip_prefix("mm1:") {
        let c = parse_finite(rest.trim(), "mm1 capacity", s)?;
        if c <= 0.0 {
            return Err(perr(s, format!("mm1 capacity must be positive, got {c}")));
        }
        return Ok(LatencyFn::mm1(c));
    }
    if let Some(rest) = s.strip_prefix("bpr:") {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        if parts.len() != 4 {
            return Err(perr(
                s,
                format!("bpr needs t0,b,c,p — got {} fields", parts.len()),
            ));
        }
        let t0 = parse_finite(parts[0], "bpr t0", s)?;
        let b = parse_finite(parts[1], "bpr b", s)?;
        let c = parse_finite(parts[2], "bpr c", s)?;
        if t0 <= 0.0 || b < 0.0 || c <= 0.0 {
            return Err(perr(
                s,
                format!("bpr needs t0 > 0, b ≥ 0, c > 0 — got {t0}, {b}, {c}"),
            ));
        }
        let p: u32 = parts[3]
            .parse()
            .map_err(|e| perr(s, format!("bpr p '{}': {e}", parts[3])))?;
        if p == 0 {
            return Err(perr(s, "bpr power p must be ≥ 1"));
        }
        return Ok(LatencyFn::bpr(t0, b, c, p));
    }
    // Affine / monomial / constant: [coef]x[^k][+b] | const
    if let Some(xpos) = s.find('x') {
        let coef_str = &s[..xpos];
        if coef_str.chars().any(char::is_whitespace) {
            return Err(perr(
                s,
                format!(
                    "interior whitespace in coefficient '{coef_str}x' (write '{}x')",
                    coef_str.trim()
                ),
            ));
        }
        let coef: f64 = if coef_str.is_empty() {
            1.0
        } else {
            parse_finite(coef_str, "coefficient", s)?
        };
        if coef < 0.0 {
            return Err(perr(s, format!("negative coefficient {coef}")));
        }
        let rest_raw = &s[xpos + 1..];
        let rest = rest_raw.trim();
        if rest.is_empty() {
            return Ok(LatencyFn::affine(coef, 0.0));
        }
        if let Some(exp) = rest.strip_prefix('^') {
            if !rest_raw.starts_with('^') {
                return Err(perr(
                    s,
                    "interior whitespace between 'x' and '^' (write 'x^k')",
                ));
            }
            if exp.starts_with(char::is_whitespace) {
                return Err(perr(s, "interior whitespace after '^' (write 'x^k')"));
            }
            // Monomial with optional offset: "x^3", "x^3+0.5". A minus is
            // rejected exactly like on the affine path below.
            let (kstr, b) = match exp.find(['+', '-']) {
                // A leading '-' belongs to the exponent, not an offset.
                Some(0) if exp.starts_with('-') => {
                    return Err(perr(
                        s,
                        format!("negative exponent '{exp}' (exponents must be ≥ 1)"),
                    ));
                }
                Some(pos) if exp.as_bytes()[pos] == b'-' => {
                    return Err(perr(
                        s,
                        format!(
                            "negative offset '{}' (offsets must be ≥ 0)",
                            exp[pos..].trim()
                        ),
                    ));
                }
                Some(plus) => (&exp[..plus], Some(exp[plus + 1..].trim())),
                None => (exp, None),
            };
            let k: u32 = kstr
                .trim()
                .parse()
                .map_err(|e| perr(s, format!("exponent '{}': {e}", kstr.trim())))?;
            if k == 0 {
                return Err(perr(s, "exponent must be ≥ 1 (use a constant instead)"));
            }
            // Monomial requires a strictly positive coefficient; 0·x^k is
            // the all-zero affine function.
            let base = if k == 1 || coef == 0.0 {
                LatencyFn::affine(coef, 0.0)
            } else {
                LatencyFn::monomial(coef, k)
            };
            return match b {
                None => Ok(base),
                Some(bs) => {
                    let b = parse_finite(bs, "intercept", s)?;
                    if b < 0.0 {
                        return Err(perr(s, format!("negative intercept {b}")));
                    }
                    Ok(base.tolled(b))
                }
            };
        }
        if let Some(stripped) = rest.strip_prefix('-') {
            return Err(perr(
                s,
                format!(
                    "negative intercept '-{}' (intercepts must be ≥ 0)",
                    stripped.trim()
                ),
            ));
        }
        if let Some(bs) = rest.strip_prefix('+') {
            let b = parse_finite(bs.trim(), "intercept", s)?;
            if b < 0.0 {
                return Err(perr(s, format!("negative intercept {b}")));
            }
            return Ok(LatencyFn::affine(coef, b));
        }
        return Err(perr(s, format!("unexpected '{rest}' after the x")));
    }
    // No 'x': a constant.
    let c = parse_finite(s, "constant", s)?;
    if c < 0.0 {
        return Err(perr(s, format!("negative constant {c}")));
    }
    Ok(LatencyFn::constant(c))
}

/// Parse a comma-separated links spec into latency functions.
pub fn parse_links(spec: &str) -> Result<Vec<LatencyFn>, SoptError> {
    if spec.trim().is_empty() {
        return Err(SoptError::EmptyScenario);
    }
    split_top_level(spec)
        .iter()
        .enumerate()
        .map(|(i, s)| {
            parse_latency(s).map_err(|e| match e {
                // An empty list item has no token of its own; name the
                // position in the list instead.
                SoptError::Parse { token, reason } if token.is_empty() => perr(
                    spec.trim(),
                    format!("link {}: {reason} (check commas)", i + 1),
                ),
                other => other,
            })
        })
        .collect()
}

/// Parse a full parallel-links spec `"x, 1.0"` or `"x, 1.0 @ 2"`:
/// latencies plus the routed rate (default 1).
pub fn parse_parallel(spec: &str) -> Result<(Vec<LatencyFn>, f64), SoptError> {
    let mut parts = spec.splitn(2, '@');
    let links_part = parts.next().unwrap_or_default();
    let rate = match parts.next() {
        None => 1.0,
        Some(r) => {
            let r = r.trim();
            let rate: f64 = r.parse().map_err(|e| perr(r, format!("rate '{r}': {e}")))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(SoptError::InvalidParameter {
                    name: "rate",
                    value: rate,
                    reason: "must be finite and > 0",
                });
            }
            rate
        }
    };
    Ok((parse_links(links_part)?, rate))
}

/// Split on commas, but not inside `bpr:…` argument lists.
fn split_top_level(spec: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut bpr_args_left = 0usize;
    for part in spec.split(',') {
        if bpr_args_left > 0 {
            cur.push(',');
            cur.push_str(part);
            bpr_args_left -= 1;
            if bpr_args_left == 0 {
                out.push(std::mem::take(&mut cur));
            }
            continue;
        }
        if part.trim_start().starts_with("bpr:") {
            cur = part.to_string();
            bpr_args_left = 3; // t0 already captured; b, c, p follow
        } else {
            out.push(part.to_string());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// The raw parts of a parsed network spec (assembled into a
/// [`crate::api::Scenario`] by `Scenario::parse`).
#[derive(Clone, Debug)]
pub struct NetworkSpec {
    /// The directed multigraph.
    pub graph: DiGraph,
    /// One latency per edge, in edge order.
    pub latencies: Vec<LatencyFn>,
    /// The demands, in declaration order.
    pub commodities: Vec<Commodity>,
    /// Priceable-edge mask from `[priceable]` markers: empty when no edge
    /// carries one, else one flag per edge in edge order.
    pub priceable: Vec<bool>,
}

/// Does this spec use the network grammar (vs the parallel-links one)?
/// Any of the grammar's signature tokens routes to [`parse_network`] —
/// including malformed network specs (e.g. a missing `nodes=N`), so their
/// diagnostics come from the right parser.
pub fn is_network_spec(spec: &str) -> bool {
    spec.contains("->") || spec.contains(';') || spec.trim_start().starts_with("nodes")
}

/// Parse the general-network grammar (see the module docs):
/// `nodes=N; A->B: EXPR; …; demand A->B: R`.
pub fn parse_network(spec: &str) -> Result<NetworkSpec, SoptError> {
    let mut nodes: Option<usize> = None;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut latencies: Vec<LatencyFn> = Vec::new();
    let mut commodities: Vec<Commodity> = Vec::new();
    let mut flags: Vec<bool> = Vec::new();

    for stmt in spec.split(';') {
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        if let Some(rest) = stmt.strip_prefix("nodes") {
            let rest = rest.trim_start();
            let Some(nstr) = rest.strip_prefix('=') else {
                return Err(perr(stmt, "expected 'nodes=N'"));
            };
            if nodes.is_some() {
                return Err(perr(stmt, "duplicate 'nodes=N' statement"));
            }
            let n: usize = nstr
                .trim()
                .parse()
                .map_err(|e| perr(stmt, format!("node count '{}': {e}", nstr.trim())))?;
            if n < 2 {
                return Err(perr(stmt, format!("need at least 2 nodes, got {n}")));
            }
            nodes = Some(n);
            continue;
        }
        let n = nodes.ok_or_else(|| perr(stmt, "'nodes=N' must come before edges and demands"))?;
        if let Some(rest) = stmt.strip_prefix("demand") {
            if !rest.starts_with(char::is_whitespace) {
                return Err(perr(stmt, "expected 'demand A->B: R'"));
            }
            let (a, b, payload) = parse_arrow(rest.trim(), stmt, n)?;
            if a == b {
                return Err(perr(stmt, "demand source and sink must differ"));
            }
            let rate: f64 = payload
                .parse()
                .map_err(|e| perr(stmt, format!("demand rate '{payload}': {e}")))?;
            if !(rate.is_finite() && rate > 0.0) {
                return Err(perr(
                    stmt,
                    format!("demand rate must be finite and > 0, got {rate}"),
                ));
            }
            commodities.push(Commodity {
                source: NodeId(a),
                sink: NodeId(b),
                rate,
            });
            continue;
        }
        // Edge statement: A->B: EXPR [priceable].
        let (a, b, payload) = parse_arrow(stmt, stmt, n)?;
        if a == b {
            return Err(perr(stmt, "self-loops are not allowed (paper §4)"));
        }
        let (payload, priceable) = match payload.strip_suffix("[priceable]") {
            Some(expr) => (expr.trim_end(), true),
            None => {
                // A different bracketed suffix is a typo, not a latency.
                if payload.ends_with(']') {
                    return Err(perr(
                        stmt,
                        "unknown edge attribute (only '[priceable]' is supported)",
                    ));
                }
                (payload, false)
            }
        };
        edges.push((a, b));
        flags.push(priceable);
        // An empty payload would otherwise report token='' — name the
        // whole edge statement so the user can find it in a long spec.
        latencies.push(parse_latency(payload).map_err(|e| match e {
            SoptError::Parse { token, reason } if token.is_empty() => perr(stmt, reason),
            other => other,
        })?);
    }

    let Some(n) = nodes else {
        return Err(perr(spec.trim(), "missing 'nodes=N' statement"));
    };
    if edges.is_empty() {
        return Err(SoptError::EmptyScenario);
    }
    if commodities.is_empty() {
        return Err(perr(spec.trim(), "missing 'demand A->B: R' statement"));
    }

    let mut graph = DiGraph::with_nodes(n);
    for &(a, b) in &edges {
        graph.add_edge(NodeId(a), NodeId(b));
    }
    // Every demand's sink must be reachable, or no feasible flow exists.
    for (ci, com) in commodities.iter().enumerate() {
        if !reachable(&graph, com.source, com.sink) {
            return Err(SoptError::Unreachable { commodity: ci });
        }
    }
    Ok(NetworkSpec {
        graph,
        latencies,
        commodities,
        // Normalise all-false to empty: the mask is only set when at least
        // one edge is actually marked, so unmarked specs stay bit-identical
        // to their pre-pricing form everywhere downstream.
        priceable: if flags.contains(&true) {
            flags
        } else {
            Vec::new()
        },
    })
}

/// Parse `A->B: PAYLOAD`, validating the endpoints against `n` nodes.
/// Returns the payload with surrounding whitespace removed.
fn parse_arrow<'a>(s: &'a str, stmt: &str, n: usize) -> Result<(u32, u32, &'a str), SoptError> {
    let Some((a_str, rest)) = s.split_once("->") else {
        return Err(perr(stmt, "expected 'A->B: …'"));
    };
    let Some((b_str, payload)) = rest.split_once(':') else {
        return Err(perr(stmt, "expected ':' after the endpoint pair"));
    };
    let a: u32 = a_str
        .trim()
        .parse()
        .map_err(|e| perr(stmt, format!("node '{}': {e}", a_str.trim())))?;
    let b: u32 = b_str
        .trim()
        .parse()
        .map_err(|e| perr(stmt, format!("node '{}': {e}", b_str.trim())))?;
    for v in [a, b] {
        if v as usize >= n {
            return Err(perr(
                stmt,
                format!("node {v} out of range (declared nodes={n})"),
            ));
        }
    }
    Ok((a, b, payload.trim()))
}

/// BFS reachability on the directed graph.
fn reachable(g: &DiGraph, from: NodeId, to: NodeId) -> bool {
    let mut seen = vec![false; g.num_nodes()];
    let mut queue = std::collections::VecDeque::from([from]);
    seen[from.idx()] = true;
    while let Some(v) = queue.pop_front() {
        if v == to {
            return true;
        }
        for &e in g.out_edges(v) {
            let w = g.edge(e).to;
            if !seen[w.idx()] {
                seen[w.idx()] = true;
                queue.push_back(w);
            }
        }
    }
    false
}

/// Format a latency back into the spec language; `None` for families the
/// grammar cannot express (piecewise, general polynomials, shifted forms).
/// Inverse of [`parse_latency`] on its image: formatted strings reparse to
/// an equal function and reformat to the identical string.
pub fn format_latency(l: &LatencyFn) -> Option<String> {
    // The grammar only admits nonnegative parameters; Rust-built values
    // outside that domain are unrepresentable, not mis-formatted.
    fn nonneg(v: f64) -> bool {
        v.is_finite() && v >= 0.0
    }
    match l {
        LatencyFn::Affine(a) if !(nonneg(a.a) && nonneg(a.b)) => None,
        LatencyFn::Constant(c) if !nonneg(c.c) => None,
        LatencyFn::Monomial(m) if !nonneg(m.c) => None,
        LatencyFn::Affine(a) => Some(if a.a == 1.0 && a.b == 0.0 {
            "x".to_string()
        } else if a.b == 0.0 {
            format!("{}x", a.a)
        } else if a.a == 1.0 {
            format!("x+{}", a.b)
        } else {
            format!("{}x+{}", a.a, a.b)
        }),
        LatencyFn::Constant(c) => Some(format!("{}", c.c)),
        LatencyFn::Monomial(m) => Some(if m.c == 1.0 {
            format!("x^{}", m.k)
        } else {
            format!("{}x^{}", m.c, m.k)
        }),
        LatencyFn::MM1(q) => Some(format!("mm1:{}", q.c)),
        LatencyFn::Bpr(b) => Some(format!("bpr:{},{},{},{}", b.t0, b.b, b.c, b.p)),
        // `x^k+b` parses to the polynomial b + c·x^k — recognise exactly
        // that sparsity pattern (plus the dense-affine degenerate cases).
        LatencyFn::Polynomial(p) => {
            let coeffs = p.coeffs();
            let nonzero: Vec<usize> = (0..coeffs.len()).filter(|&i| coeffs[i] != 0.0).collect();
            match nonzero.as_slice() {
                [] => Some("0".to_string()),
                [0] => Some(format!("{}", coeffs[0])),
                [k] if *k >= 2 => Some(if coeffs[*k] == 1.0 {
                    format!("x^{k}")
                } else {
                    format!("{}x^{k}", coeffs[*k])
                }),
                [0, k] if *k >= 2 => Some(if coeffs[*k] == 1.0 {
                    format!("x^{}+{}", k, coeffs[0])
                } else {
                    format!("{}x^{}+{}", coeffs[*k], k, coeffs[0])
                }),
                [1] => Some(format!("{}x", coeffs[1])),
                [0, 1] => Some(format!("{}x+{}", coeffs[1], coeffs[0])),
                _ => None,
            }
        }
        LatencyFn::Offset(off) => {
            // Only monomial+offset is expressible; other offset carriers
            // (mm1, bpr) have no `+b` form in the grammar.
            if let LatencyFn::Monomial(m) = &off.inner {
                Some(if m.c == 1.0 {
                    format!("x^{}+{}", m.k, off.offset)
                } else {
                    format!("{}x^{}+{}", m.c, m.k, off.offset)
                })
            } else {
                None
            }
        }
        LatencyFn::Piecewise(_) | LatencyFn::Shifted(_) => None,
    }
}

/// Format a list of latencies as a comma-separated links spec.
pub fn format_links(lats: &[LatencyFn]) -> Option<String> {
    let parts: Option<Vec<String>> = lats.iter().map(format_latency).collect();
    Some(parts?.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sopt_latency::Latency;

    #[test]
    fn parses_pigou() {
        let lats = parse_links("x, 1.0").unwrap();
        assert_eq!(lats.len(), 2);
        assert_eq!(lats[0], LatencyFn::identity());
        assert_eq!(lats[1], LatencyFn::constant(1.0));
    }

    #[test]
    fn parses_affine_forms() {
        assert_eq!(
            parse_latency("2x+0.3").unwrap(),
            LatencyFn::affine(2.0, 0.3)
        );
        assert_eq!(parse_latency("2.5x").unwrap(), LatencyFn::affine(2.5, 0.0));
        assert_eq!(
            parse_latency(" x + 1 ").unwrap(),
            LatencyFn::affine(1.0, 1.0)
        );
    }

    #[test]
    fn parses_monomials() {
        assert_eq!(parse_latency("x^3").unwrap(), LatencyFn::monomial(1.0, 3));
        assert_eq!(parse_latency("2x^4").unwrap(), LatencyFn::monomial(2.0, 4));
        // x^1 normalises to affine.
        assert_eq!(parse_latency("3x^1").unwrap(), LatencyFn::affine(3.0, 0.0));
        // Monomial plus intercept evaluates correctly.
        let l = parse_latency("x^2+1").unwrap();
        assert!((l.value(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parses_queueing_and_bpr() {
        assert_eq!(parse_latency("mm1:2.0").unwrap(), LatencyFn::mm1(2.0));
        assert_eq!(
            parse_latency("bpr:1,0.15,10,4").unwrap(),
            LatencyFn::bpr(1.0, 0.15, 10.0, 4)
        );
        // bpr embedded in a list.
        let lats = parse_links("x, bpr:1,0.15,10,4, 0.7").unwrap();
        assert_eq!(lats.len(), 3);
        assert_eq!(lats[1], LatencyFn::bpr(1.0, 0.15, 10.0, 4));
    }

    #[test]
    fn parses_constants() {
        assert_eq!(parse_latency("0.7").unwrap(), LatencyFn::constant(0.7));
        assert_eq!(parse_latency(" 0 ").unwrap(), LatencyFn::constant(0.0));
        assert_eq!(parse_latency("3").unwrap(), LatencyFn::constant(3.0));
    }

    #[test]
    fn parses_bare_and_spaced_identity() {
        assert_eq!(parse_latency("x").unwrap(), LatencyFn::identity());
        assert_eq!(parse_latency("  x  ").unwrap(), LatencyFn::identity());
        assert_eq!(parse_latency("0.5x").unwrap(), LatencyFn::affine(0.5, 0.0));
    }

    #[test]
    fn monomial_intercept_has_shifted_integral() {
        // `x^3+0.5` must behave as ℓ(x) = x³ + 0.5 for the Beckmann
        // integral too, not only pointwise.
        let l = parse_latency("x^3+0.5").unwrap();
        assert!((l.value(1.0) - 1.5).abs() < 1e-12);
        assert!((l.integral(2.0) - (2.0f64.powi(4) / 4.0 + 0.5 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn multi_link_specs_preserve_order_and_count() {
        let lats = parse_links("x, 2x+0.3, x^3, mm1:2.0, 0.7").unwrap();
        assert_eq!(lats.len(), 5);
        assert_eq!(lats[0], LatencyFn::identity());
        assert_eq!(lats[1], LatencyFn::affine(2.0, 0.3));
        assert_eq!(lats[2], LatencyFn::monomial(1.0, 3));
        assert_eq!(lats[3], LatencyFn::mm1(2.0));
        assert_eq!(lats[4], LatencyFn::constant(0.7));
        // Two bpr specs in one list must each absorb exactly their own args.
        let two = parse_links("bpr:1,0.15,10,4, bpr:2,0.3,5,2").unwrap();
        assert_eq!(two.len(), 2);
        assert_eq!(two[0], LatencyFn::bpr(1.0, 0.15, 10.0, 4));
        assert_eq!(two[1], LatencyFn::bpr(2.0, 0.3, 5.0, 2));
    }

    #[test]
    fn parses_rate_suffix() {
        let (lats, rate) = parse_parallel("x, 1.0 @ 2.5").unwrap();
        assert_eq!(lats.len(), 2);
        assert_eq!(rate, 2.5);
        let (_, rate) = parse_parallel("x, 1.0").unwrap();
        assert_eq!(rate, 1.0);
        assert!(parse_parallel("x @ -1").is_err());
        assert!(parse_parallel("x @ fast").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_latency("").is_err());
        assert!(parse_latency("-1").is_err());
        assert!(parse_latency("x^0").is_err());
        assert!(parse_latency("2x-1").is_err());
        assert!(parse_latency("mm1:-3").is_err());
        assert!(parse_latency("bpr:1,2").is_err());
        assert!(parse_links("").is_err());
    }

    #[test]
    fn rejects_malformed_numbers_with_reason() {
        // Every error names the offending token in its message.
        let msg = |s: &str| parse_latency(s).unwrap_err().to_string();
        assert!(msg("mm1:fast").contains("mm1 capacity"));
        assert!(msg("mm1:fast").contains("fast"));
        assert!(msg("mm1:0").contains("positive"));
        assert!(msg("bpr:a,0.15,10,4").contains("bpr t0"));
        assert!(msg("bpr:1,0.15,10,4.5").contains("bpr p"));
        assert!(msg("bpr:1,0.15,10,4,9").contains("fields"));
        assert!(msg("yx").contains("coefficient"));
        assert!(msg("yx").contains("yx"));
        assert!(msg("x^two").contains("exponent"));
        assert!(msg("x^two").contains("two"));
        assert!(msg("x^2+oops").contains("intercept"));
        assert!(msg("x^2+oops").contains("oops"));
        assert!(msg("x+oops").contains("intercept"));
        assert!(msg("hello").contains("constant"));
        assert!(msg("hello").contains("hello"));
    }

    #[test]
    fn rejects_negative_parameters() {
        assert!(parse_latency("-2x").is_err());
        assert!(parse_latency("x+-1").is_err());
        assert!(parse_latency("x^2+-1").is_err());
        assert!(parse_latency("-0.5").is_err());
    }

    #[test]
    fn negative_offsets_rejected_consistently() {
        // The monomial path rejects `-b` exactly like the affine path,
        // naming the offending token.
        let affine = parse_latency("2x-1").unwrap_err().to_string();
        let mono = parse_latency("x^3-1").unwrap_err().to_string();
        assert!(affine.contains("negative intercept"), "{affine}");
        assert!(mono.contains("negative offset"), "{mono}");
        assert!(mono.contains("x^3-1"), "{mono}");
        // A leading minus is a bad *exponent*, not an offset.
        let exp = parse_latency("x^-2").unwrap_err().to_string();
        assert!(exp.contains("negative exponent"), "{exp}");
    }

    #[test]
    fn rejects_interior_whitespace() {
        for bad in ["2 x", "2.5 x", "x ^2", "x^ 2", "2 x+1"] {
            let err = parse_latency(bad).unwrap_err().to_string();
            assert!(err.contains("whitespace"), "'{bad}': {err}");
        }
        // …but whitespace around '+' stays legal.
        assert!(parse_latency("x + 1").is_ok());
        assert!(parse_latency("x^2 + 1").is_ok());
    }

    #[test]
    fn rejects_non_finite_parameters_with_typed_errors() {
        // Rust's f64 parser accepts these spellings; the constructors
        // would panic, so the parser must reject them first.
        for bad in [
            "inf",
            "nan",
            "-inf",
            "infx",
            "nanx",
            "x+inf",
            "x^2+nan",
            "mm1:inf",
            "bpr:inf,0.15,10,4",
            "bpr:1,nan,10,4",
            "bpr:1,0.15,inf,4",
        ] {
            let err = parse_latency(bad);
            assert!(err.is_err(), "'{bad}' must be rejected, not panic");
        }
        assert!(parse_latency("inf")
            .unwrap_err()
            .to_string()
            .contains("finite"));
        // Degenerate-but-legal domains route to safe constructors or errors.
        assert_eq!(parse_latency("0x^3").unwrap(), LatencyFn::affine(0.0, 0.0));
        assert!(parse_latency("bpr:0,0.15,10,4").is_err());
        assert!(parse_latency("bpr:1,0.15,10,0").is_err());
    }

    #[test]
    fn network_specs_route_to_the_network_parser() {
        // A network spec missing `nodes=N` must get parse_network's
        // diagnostic, not a confusing parallel-links coefficient error.
        assert!(is_network_spec("0->1: x; demand 0->1: 1"));
        assert!(is_network_spec("nodes=2"));
        assert!(!is_network_spec("x, 1.0 @ 2"));
        let err = parse_network("0->1: x; demand 0->1: 1").unwrap_err();
        assert!(err.to_string().contains("nodes=N"), "{err}");
    }

    #[test]
    fn rejects_trailing_junk_after_x() {
        assert!(parse_latency("x2").is_err());
        assert!(parse_latency("x*3").is_err());
        assert!(parse_latency("xx").is_err());
    }

    #[test]
    fn empty_list_items_are_rejected() {
        assert!(parse_links("x,,1.0")
            .unwrap_err()
            .to_string()
            .contains("empty"));
        assert!(parse_links(",x").is_err());
        assert_eq!(parse_links("").unwrap_err(), SoptError::EmptyScenario);
    }

    #[test]
    fn parses_network_grammar() {
        let spec = "nodes=4; 0->1: x; 0->2: 1.0; 1->3: 1.0; 2->3: x; demand 0->3: 1.0";
        let net = parse_network(spec).unwrap();
        assert_eq!(net.graph.num_nodes(), 4);
        assert_eq!(net.graph.num_edges(), 4);
        assert_eq!(net.commodities.len(), 1);
        assert_eq!(net.commodities[0].rate, 1.0);
        assert_eq!(net.latencies[0], LatencyFn::identity());
        assert_eq!(net.latencies[1], LatencyFn::constant(1.0));
    }

    #[test]
    fn parses_priceable_markers() {
        let spec = "nodes=3; 0->1: x [priceable]; 1->2: 2x+0.3; demand 0->2: 1.0";
        let net = parse_network(spec).unwrap();
        assert_eq!(net.priceable, vec![true, false]);
        assert_eq!(net.latencies[0], LatencyFn::identity());
        // No marker anywhere ⇒ the mask stays empty, not all-false.
        let plain = parse_network("nodes=2; 0->1: x; demand 0->1: 1.0").unwrap();
        assert!(plain.priceable.is_empty());
        // Unknown bracketed attributes are named, not parsed as latencies.
        let err = parse_network("nodes=2; 0->1: x [tolled]; demand 0->1: 1.0").unwrap_err();
        assert!(err.to_string().contains("priceable"), "{err}");
    }

    #[test]
    fn parses_multicommodity_grammar() {
        let spec = "nodes=4; 0->1: x; 0->1: 1.0; 2->3: x; 2->3: 1.0; \
                    demand 0->1: 1.0; demand 2->3: 1.0";
        let net = parse_network(spec).unwrap();
        assert_eq!(net.commodities.len(), 2);
        assert_eq!(net.commodities[1].source, NodeId(2));
    }

    #[test]
    fn network_grammar_rejections_name_the_statement() {
        let msg = |s: &str| parse_network(s).unwrap_err().to_string();
        assert!(msg("0->1: x; demand 0->1: 1").contains("nodes=N"));
        assert!(msg("nodes=2; 0->5: x; demand 0->1: 1").contains("out of range"));
        assert!(msg("nodes=2; 0->0: x; demand 0->1: 1").contains("self-loop"));
        assert!(msg("nodes=2; 0->1: x").contains("demand"));
        assert!(msg("nodes=2; 0->1: x; demand 0->1: -1").contains("rate"));
        assert!(msg("nodes=2; 0->1: 2 x; demand 0->1: 1").contains("whitespace"));
        assert!(msg("nodes=1; 0->1: x; demand 0->1: 1").contains("at least 2"));
        assert_eq!(
            parse_network("nodes=3; 0->1: x; demand 0->2: 1").unwrap_err(),
            SoptError::Unreachable { commodity: 0 }
        );
    }

    #[test]
    fn latencies_round_trip_through_format() {
        let specs = [
            "x",
            "2.5x",
            "2x+0.3",
            "x+1",
            "0.7",
            "0",
            "x^3",
            "2x^4",
            "x^3+0.5",
            "2x^3+0.25",
            "mm1:2",
            "bpr:1,0.15,10,4",
        ];
        for s in specs {
            let l = parse_latency(s).unwrap();
            let formatted = format_latency(&l).unwrap_or_else(|| panic!("'{s}' unformattable"));
            let reparsed = parse_latency(&formatted).unwrap();
            assert_eq!(
                format_latency(&reparsed).unwrap(),
                formatted,
                "'{s}' → '{formatted}' does not round-trip"
            );
            // The reparse is also pointwise identical.
            for x in [0.0, 0.3, 1.0, 1.7] {
                assert!(
                    (l.value(x) - reparsed.value(x)).abs() < 1e-12,
                    "'{s}' at {x}"
                );
            }
        }
    }

    #[test]
    fn inexpressible_families_format_to_none() {
        assert!(format_latency(&LatencyFn::piecewise(0.1, &[(0.0, 1.0)])).is_none());
        assert!(format_latency(&LatencyFn::polynomial(vec![1.0, 2.0, 3.0])).is_none());
        assert!(format_latency(&LatencyFn::mm1(2.0).preloaded(0.5)).is_some()); // mm1 shifts stay mm1
        assert!(format_latency(&LatencyFn::bpr(1.0, 0.15, 10.0, 4).preloaded(0.5)).is_none());
    }
}
