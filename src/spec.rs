//! Text specifications for instances — the CLI's input language.
//!
//! A *links spec* is a comma-separated list of latency expressions:
//!
//! | form | meaning |
//! |---|---|
//! | `x` | `ℓ(x) = x` |
//! | `2.5x` | `ℓ(x) = 2.5·x` |
//! | `2x+0.3` | `ℓ(x) = 2x + 0.3` |
//! | `0.7` | `ℓ ≡ 0.7` |
//! | `x^3`, `2x^4` | monomials |
//! | `mm1:2.0` | M/M/1 with capacity 2 |
//! | `bpr:1,0.15,10,4` | BPR `t₀(1 + b(x/c)^p)` |
//!
//! Example: `"x, 1.0"` is Pigou's network.

use sopt_latency::LatencyFn;

/// Parse a single latency expression. Errors carry a human-readable reason.
pub fn parse_latency(s: &str) -> Result<LatencyFn, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty latency expression".into());
    }
    if let Some(rest) = s.strip_prefix("mm1:") {
        let c: f64 = rest
            .trim()
            .parse()
            .map_err(|e| format!("mm1 capacity: {e}"))?;
        if c <= 0.0 {
            return Err(format!("mm1 capacity must be positive, got {c}"));
        }
        return Ok(LatencyFn::mm1(c));
    }
    if let Some(rest) = s.strip_prefix("bpr:") {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        if parts.len() != 4 {
            return Err(format!("bpr needs t0,b,c,p — got {} fields", parts.len()));
        }
        let t0: f64 = parts[0].parse().map_err(|e| format!("bpr t0: {e}"))?;
        let b: f64 = parts[1].parse().map_err(|e| format!("bpr b: {e}"))?;
        let c: f64 = parts[2].parse().map_err(|e| format!("bpr c: {e}"))?;
        let p: u32 = parts[3].parse().map_err(|e| format!("bpr p: {e}"))?;
        return Ok(LatencyFn::bpr(t0, b, c, p));
    }
    // Affine / monomial / constant: [coef]x[^k][+b] | const
    if let Some(xpos) = s.find('x') {
        let coef_str = s[..xpos].trim();
        let coef: f64 = if coef_str.is_empty() {
            1.0
        } else {
            coef_str
                .parse()
                .map_err(|e| format!("coefficient '{coef_str}': {e}"))?
        };
        if coef < 0.0 {
            return Err(format!("negative coefficient {coef}"));
        }
        let rest = s[xpos + 1..].trim();
        if rest.is_empty() {
            return Ok(LatencyFn::affine(coef, 0.0));
        }
        if let Some(exp) = rest.strip_prefix('^') {
            // Monomial with optional +b: "x^3", "x^3+0.5".
            let (kstr, b) = match exp.find('+') {
                Some(plus) => (&exp[..plus], Some(exp[plus + 1..].trim())),
                None => (exp, None),
            };
            let k: u32 = kstr
                .trim()
                .parse()
                .map_err(|e| format!("exponent '{kstr}': {e}"))?;
            if k == 0 {
                return Err("exponent must be ≥ 1 (use a constant instead)".into());
            }
            let base = if k == 1 {
                LatencyFn::affine(coef, 0.0)
            } else {
                LatencyFn::monomial(coef, k)
            };
            return match b {
                None => Ok(base),
                Some(bs) => {
                    let b: f64 = bs.parse().map_err(|e| format!("intercept '{bs}': {e}"))?;
                    if b < 0.0 {
                        return Err(format!("negative intercept {b}"));
                    }
                    Ok(base.tolled(b))
                }
            };
        }
        if let Some(bs) = rest.strip_prefix('+') {
            let b: f64 = bs
                .trim()
                .parse()
                .map_err(|e| format!("intercept '{bs}': {e}"))?;
            if b < 0.0 {
                return Err(format!("negative intercept {b}"));
            }
            return Ok(LatencyFn::affine(coef, b));
        }
        return Err(format!("cannot parse '{s}' after the x"));
    }
    // No 'x': a constant.
    let c: f64 = s.parse().map_err(|e| format!("constant '{s}': {e}"))?;
    if c < 0.0 {
        return Err(format!("negative constant {c}"));
    }
    Ok(LatencyFn::constant(c))
}

/// Parse a comma-separated links spec into latency functions.
pub fn parse_links(spec: &str) -> Result<Vec<LatencyFn>, String> {
    let lats: Result<Vec<_>, _> = split_top_level(spec)
        .iter()
        .map(|s| parse_latency(s))
        .collect();
    let lats = lats?;
    if lats.is_empty() {
        return Err("no links in spec".into());
    }
    Ok(lats)
}

/// Split on commas, but not inside `bpr:…` argument lists.
fn split_top_level(spec: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut bpr_args_left = 0usize;
    for part in spec.split(',') {
        if bpr_args_left > 0 {
            cur.push(',');
            cur.push_str(part);
            bpr_args_left -= 1;
            if bpr_args_left == 0 {
                out.push(std::mem::take(&mut cur));
            }
            continue;
        }
        if part.trim_start().starts_with("bpr:") {
            cur = part.to_string();
            bpr_args_left = 3; // t0 already captured; b, c, p follow
        } else {
            out.push(part.to_string());
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sopt_latency::Latency;

    #[test]
    fn parses_pigou() {
        let lats = parse_links("x, 1.0").unwrap();
        assert_eq!(lats.len(), 2);
        assert_eq!(lats[0], LatencyFn::identity());
        assert_eq!(lats[1], LatencyFn::constant(1.0));
    }

    #[test]
    fn parses_affine_forms() {
        assert_eq!(
            parse_latency("2x+0.3").unwrap(),
            LatencyFn::affine(2.0, 0.3)
        );
        assert_eq!(parse_latency("2.5x").unwrap(), LatencyFn::affine(2.5, 0.0));
        assert_eq!(
            parse_latency(" x + 1 ").unwrap(),
            LatencyFn::affine(1.0, 1.0)
        );
    }

    #[test]
    fn parses_monomials() {
        assert_eq!(parse_latency("x^3").unwrap(), LatencyFn::monomial(1.0, 3));
        assert_eq!(parse_latency("2x^4").unwrap(), LatencyFn::monomial(2.0, 4));
        // x^1 normalises to affine.
        assert_eq!(parse_latency("3x^1").unwrap(), LatencyFn::affine(3.0, 0.0));
        // Monomial plus intercept evaluates correctly.
        let l = parse_latency("x^2+1").unwrap();
        assert!((l.value(2.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn parses_queueing_and_bpr() {
        assert_eq!(parse_latency("mm1:2.0").unwrap(), LatencyFn::mm1(2.0));
        assert_eq!(
            parse_latency("bpr:1,0.15,10,4").unwrap(),
            LatencyFn::bpr(1.0, 0.15, 10.0, 4)
        );
        // bpr embedded in a list.
        let lats = parse_links("x, bpr:1,0.15,10,4, 0.7").unwrap();
        assert_eq!(lats.len(), 3);
        assert_eq!(lats[1], LatencyFn::bpr(1.0, 0.15, 10.0, 4));
    }

    #[test]
    fn parses_constants() {
        assert_eq!(parse_latency("0.7").unwrap(), LatencyFn::constant(0.7));
        assert_eq!(parse_latency(" 0 ").unwrap(), LatencyFn::constant(0.0));
        assert_eq!(parse_latency("3").unwrap(), LatencyFn::constant(3.0));
    }

    #[test]
    fn parses_bare_and_spaced_identity() {
        assert_eq!(parse_latency("x").unwrap(), LatencyFn::identity());
        assert_eq!(parse_latency("  x  ").unwrap(), LatencyFn::identity());
        assert_eq!(parse_latency("0.5x").unwrap(), LatencyFn::affine(0.5, 0.0));
    }

    #[test]
    fn monomial_intercept_has_shifted_integral() {
        // `x^3+0.5` must behave as ℓ(x) = x³ + 0.5 for the Beckmann
        // integral too, not only pointwise.
        let l = parse_latency("x^3+0.5").unwrap();
        assert!((l.value(1.0) - 1.5).abs() < 1e-12);
        assert!((l.integral(2.0) - (2.0f64.powi(4) / 4.0 + 0.5 * 2.0)).abs() < 1e-9);
    }

    #[test]
    fn multi_link_specs_preserve_order_and_count() {
        let lats = parse_links("x, 2x+0.3, x^3, mm1:2.0, 0.7").unwrap();
        assert_eq!(lats.len(), 5);
        assert_eq!(lats[0], LatencyFn::identity());
        assert_eq!(lats[1], LatencyFn::affine(2.0, 0.3));
        assert_eq!(lats[2], LatencyFn::monomial(1.0, 3));
        assert_eq!(lats[3], LatencyFn::mm1(2.0));
        assert_eq!(lats[4], LatencyFn::constant(0.7));
        // Two bpr specs in one list must each absorb exactly their own args.
        let two = parse_links("bpr:1,0.15,10,4, bpr:2,0.3,5,2").unwrap();
        assert_eq!(two.len(), 2);
        assert_eq!(two[0], LatencyFn::bpr(1.0, 0.15, 10.0, 4));
        assert_eq!(two[1], LatencyFn::bpr(2.0, 0.3, 5.0, 2));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_latency("").is_err());
        assert!(parse_latency("-1").is_err());
        assert!(parse_latency("x^0").is_err());
        assert!(parse_latency("2x-1").is_err());
        assert!(parse_latency("mm1:-3").is_err());
        assert!(parse_latency("bpr:1,2").is_err());
        assert!(parse_links("").is_err());
    }

    #[test]
    fn rejects_malformed_numbers_with_reason() {
        // Every error carries a human-readable reason naming the bad field.
        assert!(parse_latency("mm1:fast")
            .unwrap_err()
            .contains("mm1 capacity"));
        assert!(parse_latency("mm1:0").unwrap_err().contains("positive"));
        assert!(parse_latency("bpr:a,0.15,10,4")
            .unwrap_err()
            .contains("bpr t0"));
        assert!(parse_latency("bpr:1,0.15,10,4.5")
            .unwrap_err()
            .contains("bpr p"));
        assert!(parse_latency("bpr:1,0.15,10,4,9")
            .unwrap_err()
            .contains("fields"));
        assert!(parse_latency("yx").unwrap_err().contains("coefficient"));
        assert!(parse_latency("x^two").unwrap_err().contains("exponent"));
        assert!(parse_latency("x^2+oops").unwrap_err().contains("intercept"));
        assert!(parse_latency("x+oops").unwrap_err().contains("intercept"));
        assert!(parse_latency("hello").unwrap_err().contains("constant"));
    }

    #[test]
    fn rejects_negative_parameters() {
        assert!(parse_latency("-2x").is_err());
        assert!(parse_latency("x+-1").is_err());
        assert!(parse_latency("x^2+-1").is_err());
        assert!(parse_latency("-0.5").is_err());
    }

    #[test]
    fn rejects_trailing_junk_after_x() {
        assert!(parse_latency("x2").is_err());
        assert!(parse_latency("x*3").is_err());
        assert!(parse_latency("xx").is_err());
    }

    #[test]
    fn empty_list_items_are_rejected() {
        assert!(parse_links("x,,1.0").unwrap_err().contains("empty"));
        assert!(parse_links(",x").is_err());
    }
}
