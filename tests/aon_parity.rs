//! Property-based parity for the origin-grouped AON path: whatever
//! `AonMode` resolves the per-iteration all-or-nothing targets —
//! sequential per-commodity queries, origin-grouped one-to-many queries,
//! or the threaded fan-out — every per-commodity edge flow of the solved
//! optimum must agree to ≤1e-12 with the historical sequential solver.
//! Forcing `Grouped` and `Parallel` explicitly exercises both sides of
//! the `Auto` work threshold without needing city-scale instances per
//! proptest case.

use proptest::prelude::*;
use stackopt::equilibrium::network::try_multicommodity_optimum;
use stackopt::instances::random::try_random_multicommodity;
use stackopt::instances::try_grid_city_multi;
use stackopt::network::instance::MultiCommodityInstance;
use stackopt::solver::frank_wolfe::FwOptions;
use stackopt::solver::AonMode;

/// Per-commodity flows of the multicommodity optimum under `mode`.
fn flows_under(inst: &MultiCommodityInstance, mode: AonMode) -> Vec<Vec<f64>> {
    let opts = FwOptions {
        aon: mode,
        ..FwOptions::default()
    };
    let r = try_multicommodity_optimum(inst, &opts, None).expect("solvable instance");
    assert!(r.converged, "{mode:?} failed to converge");
    r.per_commodity.into_iter().map(|f| f.0).collect()
}

fn assert_parity(inst: &MultiCommodityInstance) -> Result<(), TestCaseError> {
    let sequential = flows_under(inst, AonMode::Sequential);
    for mode in [AonMode::Grouped, AonMode::Parallel, AonMode::Auto] {
        let got = flows_under(inst, mode);
        prop_assert_eq!(got.len(), sequential.len());
        for (ci, (a, b)) in got.iter().zip(&sequential).enumerate() {
            for (e, (x, y)) in a.iter().zip(b).enumerate() {
                prop_assert!(
                    (x - y).abs() <= 1e-12,
                    "{:?} commodity {} edge {}: {} vs sequential {}",
                    mode,
                    ci,
                    e,
                    x,
                    y
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Layered random k-commodity instances: distinct origins per
    /// commodity, so grouping degenerates to one group per commodity and
    /// must still match.
    #[test]
    fn aon_modes_agree_on_layered_instances(
        seed in 0u64..2000,
        layers in 1usize..3,
        width in 2usize..4,
        k in 2usize..5,
    ) {
        let inst = try_random_multicommodity(layers, width, k, 4.0, seed).unwrap();
        assert_parity(&inst)?;
    }

    /// Grid OD matrices: many commodities share few origins, the workload
    /// the one-to-many tree actually collapses.
    #[test]
    fn aon_modes_agree_on_grid_od_matrices(
        seed in 0u64..2000,
        side in 3usize..6,
        k in 2usize..12,
    ) {
        let inst = try_grid_city_multi(side, 2.0, k, seed).unwrap();
        assert_parity(&inst)?;
    }
}
