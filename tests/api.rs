//! Acceptance tests for the `stackopt::api` session layer: every task on
//! every scenario class where defined, every `SoptError` variant, batch
//! ordering, and serializer validity.

use stackopt::api::{parse_batch_file, Batch, Report, Scenario, ScenarioClass, SoptError, Task};
use stackopt::prelude::*;

const PIGOU: &str = "x, 1.0";
const PIGOU_NET: &str = "nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0";
const TWO_PIGOUS: &str = "nodes=4; 0->1: x; 0->1: 1.0; 2->3: x; 2->3: 1.0; \
                          demand 0->1: 1.0; demand 2->3: 1.0";

fn solve(spec: &str, task: Task) -> Result<Report, SoptError> {
    let mut s = Scenario::parse(spec).unwrap().solve().task(task);
    if task == Task::Llf {
        s = s.alpha(0.5);
    }
    s.run()
}

/// Which (class, task) pairs are defined; `Solve::run` must succeed on all
/// of them and return a typed `Unsupported` (never a panic) on the rest.
/// Since the `ScenarioModel` layer, only LLF and pricing are
/// class-restricted. Network pricing is defined but needs a `[priceable]`
/// edge, so on the plain Pigou net it returns a typed `MissingParameter`
/// rather than a report — still never a panic.
#[test]
fn task_coverage_matrix() {
    let defined = |class: ScenarioClass, task: Task| match class {
        ScenarioClass::Parallel => true,
        ScenarioClass::Network => !matches!(task, Task::Llf),
        ScenarioClass::Multi => !matches!(task, Task::Llf | Task::Pricing),
    };
    for (spec, class) in [
        (PIGOU, ScenarioClass::Parallel),
        (PIGOU_NET, ScenarioClass::Network),
        (TWO_PIGOUS, ScenarioClass::Multi),
    ] {
        for task in Task::ALL {
            let result = solve(spec, task);
            if class == ScenarioClass::Network && task == Task::Pricing {
                assert_eq!(
                    result.unwrap_err(),
                    SoptError::MissingParameter {
                        name: "priceable",
                        reason:
                            "network pricing needs at least one edge marked '[priceable]' in the spec",
                    },
                    "{class} {task}"
                );
            } else if defined(class, task) {
                let report = result.unwrap_or_else(|e| panic!("{class} {task}: {e}"));
                assert_eq!(report.scenario.class, class);
                assert_eq!(report.scenario.task, task);
            } else {
                assert_eq!(
                    result.unwrap_err(),
                    SoptError::Unsupported { task, class },
                    "{class} {task}"
                );
            }
        }
    }
}

/// The k-commodity curve: strong pins to 1 at β, weak only at
/// `weak_beta = max_i α_i`, and the tolls task restores the optimum on a
/// multicommodity instance.
#[test]
fn multicommodity_curve_and_tolls_are_first_class() {
    // Two Pigou gadgets at rates 1 and 2: α₁ = 1/2, α₂ = 3/4, so
    // β = 2/3 and weak_beta = 3/4.
    let asym = "nodes=4; 0->1: x; 0->1: 1.0; 2->3: x; 2->3: 1.0; \
                demand 0->1: 1.0; demand 2->3: 2.0";
    let strong = Scenario::parse(asym)
        .unwrap()
        .solve()
        .task(Task::Curve)
        .steps(12)
        .run()
        .unwrap();
    let weak = Scenario::parse(asym)
        .unwrap()
        .solve()
        .task(Task::Curve)
        .steps(12)
        .strategy(stackopt::api::CurveStrategy::Weak)
        .run()
        .unwrap();
    let (s, w) = (
        strong.data.as_curve().unwrap(),
        weak.data.as_curve().unwrap(),
    );
    assert_eq!(s.strategy, "strong");
    assert_eq!(w.strategy, "weak");
    assert!((s.beta - 2.0 / 3.0).abs() < 1e-3, "β = {}", s.beta);
    assert!((w.beta - 0.75).abs() < 1e-3, "weak β = {}", w.beta);
    assert_eq!(s.weak_beta, w.weak_beta);
    assert!((w.weak_beta.unwrap() - 0.75).abs() < 1e-3);
    // α = 9/12 = 0.75: strong is exact, weak exactly reaches its crossover.
    for c in [s, w] {
        let last = c.points.last().unwrap();
        assert!(
            (last.ratio - 1.0).abs() < 1e-4,
            "{}: {}",
            c.strategy,
            last.ratio
        );
        // C(N)/C(O) = 3/2.5: the sweep starts at the coordination ratio.
        assert!((c.points.first().unwrap().ratio - 1.2).abs() < 1e-3);
    }

    let tolls = solve(TWO_PIGOUS, Task::Tolls).unwrap();
    let t = tolls.data.as_tolls().unwrap();
    // Marginal-cost tolls on two unit Pigous: τ = 1/2 on each x-edge, and
    // the tolled equilibrium restores C(O) = 3/2.
    assert!((t.tolled_cost - 1.5).abs() < 1e-4);
    assert!((t.revenue - 0.5).abs() < 1e-4);
    for (nash, opt) in t.tolled_nash.iter().zip(&t.optimum) {
        assert!((nash - opt).abs() < 1e-4);
    }
}

/// The three classes agree on Pigou: β = 1/2 everywhere it is defined.
#[test]
fn beta_agrees_across_classes_on_pigou() {
    for spec in [PIGOU, PIGOU_NET, TWO_PIGOUS] {
        let report = solve(spec, Task::Beta).unwrap();
        let b = report.data.as_beta().unwrap();
        assert!((b.beta - 0.5).abs() < 1e-4, "'{spec}': β = {}", b.beta);
        assert!((b.optimum_cost / report.scenario.rate - 0.75).abs() < 1e-4);
        assert!(
            (b.induced_cost - b.optimum_cost).abs() < 1e-4,
            "'{spec}': strategy must enforce the optimum"
        );
    }
    // The multicommodity report carries per-commodity portions.
    let report = solve(TWO_PIGOUS, Task::Beta).unwrap();
    let alphas = &report.data.as_beta().unwrap().commodity_alphas;
    assert_eq!(alphas.len(), 2);
    for a in alphas {
        assert!((a - 0.5).abs() < 1e-4);
    }
}

/// A BPR commuter net the solver cannot finish in one iteration, so the
/// session's `max_iters` budget is observable.
const HARD_NET: &str = "nodes=4; 0->1: bpr:1,0.15,10,4; 0->2: bpr:1.5,0.15,6,4; \
                        1->3: bpr:1,0.15,8,4; 2->3: bpr:1.2,0.15,9,4; \
                        1->2: bpr:0.3,0.15,5,4; demand 0->3: 12";

#[test]
fn tolerance_and_max_iters_are_honoured() {
    // A starved iteration budget must be reported as NotConverged, not
    // silently accepted.
    let err = Scenario::parse(HARD_NET)
        .unwrap()
        .solve()
        .task(Task::Beta)
        .tolerance(1e-12)
        .max_iters(1)
        .run()
        .unwrap_err();
    assert!(matches!(err, SoptError::NotConverged { .. }), "got {err:?}");
    // The same target is reachable at the default budget.
    assert!(Scenario::parse(HARD_NET)
        .unwrap()
        .solve()
        .task(Task::Beta)
        .tolerance(1e-12)
        .run()
        .is_ok());
}

/// Every `SoptError` variant is reachable through the public API.
#[test]
fn every_error_variant_is_reachable() {
    // Parse
    assert!(matches!(
        Scenario::parse("2 x").unwrap_err(),
        SoptError::Parse { .. }
    ));
    // EmptyScenario
    assert_eq!(Scenario::parse("").unwrap_err(), SoptError::EmptyScenario);
    // InvalidParameter
    assert!(matches!(
        Scenario::parse(PIGOU).unwrap().with_rate(-1.0).unwrap_err(),
        SoptError::InvalidParameter { name: "rate", .. }
    ));
    // MissingParameter
    let missing_alpha = Scenario::parse(PIGOU)
        .unwrap()
        .solve()
        .task(Task::Llf)
        .run();
    assert_eq!(
        missing_alpha.unwrap_err(),
        SoptError::MissingParameter {
            name: "alpha",
            reason: "llf requires an alpha in [0, 1]",
        }
    );
    // AtLine preserves the typed source variant under the line number.
    match parse_batch_file("x, 1.0\nnodes=3; 0->1: x; demand 0->2: 1\n").unwrap_err() {
        SoptError::AtLine { line, source } => {
            assert_eq!(line, 2);
            assert_eq!(*source, SoptError::Unreachable { commodity: 0 });
        }
        other => panic!("expected AtLine, got {other:?}"),
    }
    // Infeasible (M/M/1 saturation)
    assert!(matches!(
        Scenario::parse("mm1:1.0 @ 2").unwrap().solve().run(),
        Err(SoptError::Infeasible { .. })
    ));
    // InvalidStrategy (via the typed try_ path the api builds on)
    let links = ParallelLinks::new(vec![LatencyFn::identity()], 1.0);
    let e: SoptError = links.try_induced_cost(&[2.0]).unwrap_err().into();
    assert!(matches!(e, SoptError::InvalidStrategy { .. }));
    // Unsupported (LLF is the one class-restricted task left)
    assert!(matches!(
        solve(TWO_PIGOUS, Task::Llf).unwrap_err(),
        SoptError::Unsupported { .. }
    ));
    // NotConverged
    assert!(matches!(
        Scenario::parse(HARD_NET)
            .unwrap()
            .solve()
            .tolerance(1e-12)
            .max_iters(1)
            .run()
            .unwrap_err(),
        SoptError::NotConverged { .. }
    ));
    // Unreachable
    assert_eq!(
        Scenario::parse("nodes=3; 0->1: x; demand 0->2: 1").unwrap_err(),
        SoptError::Unreachable { commodity: 0 }
    );
    // Unrepresentable
    let piecewise = ParallelLinks::new(vec![LatencyFn::piecewise(0.1, &[(0.0, 1.0)])], 1.0);
    assert!(matches!(
        Scenario::from(piecewise).to_spec().unwrap_err(),
        SoptError::Unrepresentable { .. }
    ));
    // WorkerPanic has no safe trigger; its Display contract is pinned here.
    assert!(SoptError::WorkerPanic { index: 3 }
        .to_string()
        .contains("scenario 3"));
}

#[test]
fn batch_returns_input_order_for_all_tasks() {
    let text = "x, 1.0\nx, 2x, 0.9\nx, 1.0 @ 2\n";
    let scenarios = parse_batch_file(text).unwrap();
    assert_eq!(scenarios.len(), 3);
    let n = scenarios.len();
    for task in [Task::Beta, Task::Equilib] {
        let reports = Batch::new(scenarios.clone()).task(task).threads(2).run();
        assert_eq!(reports.len(), n);
        // Input order: rates 1, 1, 2 and sizes 2, 3, 2 identify each slot.
        let sizes: Vec<usize> = reports
            .iter()
            .map(|r| r.as_ref().unwrap().scenario.size)
            .collect();
        assert_eq!(sizes, vec![2, 3, 2], "{task}");
        let rates: Vec<f64> = reports
            .iter()
            .map(|r| r.as_ref().unwrap().scenario.rate)
            .collect();
        assert_eq!(rates, vec![1.0, 1.0, 2.0], "{task}");
    }
}

// ---------------------------------------------------------------------------
// Serializer validity: a minimal recursive-descent JSON parser (tests only).
// ---------------------------------------------------------------------------

fn skip_ws(s: &[u8], mut i: usize) -> usize {
    while i < s.len() && (s[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// Validate one JSON value starting at `i`; returns the index after it.
fn json_value(s: &[u8], i: usize) -> Result<usize, String> {
    let i = skip_ws(s, i);
    let err = |i: usize, what: &str| Err(format!("offset {i}: {what}"));
    match s.get(i) {
        None => err(i, "eof"),
        Some(b'{') => {
            let mut i = skip_ws(s, i + 1);
            if s.get(i) == Some(&b'}') {
                return Ok(i + 1);
            }
            loop {
                i = json_string(s, i)?;
                i = skip_ws(s, i);
                if s.get(i) != Some(&b':') {
                    return err(i, "expected ':'");
                }
                i = json_value(s, i + 1)?;
                i = skip_ws(s, i);
                match s.get(i) {
                    Some(b',') => i = skip_ws(s, i + 1),
                    Some(b'}') => return Ok(i + 1),
                    _ => return err(i, "expected ',' or '}'"),
                }
            }
        }
        Some(b'[') => {
            let mut i = skip_ws(s, i + 1);
            if s.get(i) == Some(&b']') {
                return Ok(i + 1);
            }
            loop {
                i = json_value(s, i)?;
                i = skip_ws(s, i);
                match s.get(i) {
                    Some(b',') => i = skip_ws(s, i + 1),
                    Some(b']') => return Ok(i + 1),
                    _ => return err(i, "expected ',' or ']'"),
                }
            }
        }
        Some(b'"') => json_string(s, i),
        Some(b'n') if s[i..].starts_with(b"null") => Ok(i + 4),
        Some(b't') if s[i..].starts_with(b"true") => Ok(i + 4),
        Some(b'f') if s[i..].starts_with(b"false") => Ok(i + 5),
        Some(_) => {
            let start = i;
            let mut j = i;
            while j < s.len() && matches!(s[j], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                j += 1;
            }
            if j == start {
                return err(i, "unexpected character");
            }
            std::str::from_utf8(&s[start..j])
                .ok()
                .and_then(|t| t.parse::<f64>().ok())
                .map(|_| j)
                .ok_or_else(|| format!("offset {start}: bad number"))
        }
    }
}

fn json_string(s: &[u8], i: usize) -> Result<usize, String> {
    let i = skip_ws(s, i);
    if s.get(i) != Some(&b'"') {
        return Err(format!("offset {i}: expected '\"'"));
    }
    let mut i = i + 1;
    while let Some(&c) = s.get(i) {
        match c {
            b'\\' => i += 2,
            b'"' => return Ok(i + 1),
            _ => i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn assert_valid_json(text: &str) {
    let bytes = text.as_bytes();
    let end = json_value(bytes, 0).unwrap_or_else(|e| panic!("invalid JSON ({e}): {text}"));
    assert_eq!(skip_ws(bytes, end), bytes.len(), "trailing garbage: {text}");
}

#[test]
fn json_output_is_valid_for_every_defined_pair() {
    for spec in [PIGOU, PIGOU_NET, TWO_PIGOUS] {
        for task in Task::ALL {
            if let Ok(report) = solve(spec, task) {
                let j = report.to_json();
                assert_valid_json(&j);
                assert!(j.contains(&format!("\"task\": \"{task}\"")), "{j}");
            }
        }
    }
}

#[test]
fn json_headline_matches_the_ci_smoke_contract() {
    // The CI smoke step greps for exactly this key-value pair.
    let report = solve(PIGOU, Task::Beta).unwrap();
    assert!(report.to_json().contains("\"beta\": 0.5"));
}

#[test]
fn csv_output_shape() {
    let beta = solve(PIGOU, Task::Beta).unwrap();
    let csv = beta.to_csv();
    let mut lines = csv.lines();
    assert_eq!(lines.next().unwrap(), beta.csv_header());
    assert_eq!(lines.count(), 1, "beta is a one-row report");

    let curve = Scenario::parse(PIGOU)
        .unwrap()
        .solve()
        .task(Task::Curve)
        .steps(4)
        .run()
        .unwrap();
    assert_eq!(curve.to_csv().lines().count(), 1 + 5, "header + 5 samples");

    let equilib = solve(PIGOU, Task::Equilib).unwrap();
    assert_eq!(equilib.to_csv().lines().count(), 1 + 2, "header + 2 links");
}

#[test]
fn reports_survive_a_spec_round_trip() {
    // Solving a re-parsed formatted scenario gives the same JSON.
    for spec in [PIGOU, "2x+0.3, x^3+0.5, mm1:2 @ 1.5", PIGOU_NET, TWO_PIGOUS] {
        let s1 = Scenario::parse(spec).unwrap();
        let formatted = s1.to_spec().unwrap();
        let s2 = Scenario::parse(&formatted).unwrap();
        let r1 = s1.solve().task(Task::Beta).run().unwrap();
        let r2 = s2.solve().task(Task::Beta).run().unwrap();
        assert_eq!(r1.to_json(), r2.to_json(), "'{spec}' vs '{formatted}'");
    }
}
