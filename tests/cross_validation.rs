//! Cross-solver validation: independent algorithms must agree wherever
//! their domains overlap. A bug in any single solver cannot pass these.

use stackopt::core::brute::{brute_force_optimal, BruteOptions};
use stackopt::core::linear_optimal::linear_optimal_strategy;
use stackopt::core::mop::mop;
use stackopt::core::optop::optop;
use stackopt::instances::random::{
    random_common_slope, random_layered_network, random_mixed, random_mixed_smooth,
};
use stackopt::latency::LatencyFn;
use stackopt::network::graph::{DiGraph, NodeId};
use stackopt::network::instance::NetworkInstance;
use stackopt::prelude::*;
use stackopt::solver::frank_wolfe::FwOptions;
use stackopt::solver::objective::CostModel;
use stackopt::solver::pgd::path_equilibrium;

/// Build the 2-node multigraph equivalent of a parallel-links system.
fn as_network(links: &ParallelLinks) -> NetworkInstance {
    let mut g = DiGraph::with_nodes(2);
    for _ in 0..links.m() {
        g.add_edge(NodeId(0), NodeId(1));
    }
    NetworkInstance::new(
        g,
        links.latencies().to_vec(),
        NodeId(0),
        NodeId(1),
        links.rate(),
    )
}

/// The equalizer (closed-form inverses + bisection) and Frank–Wolfe
/// (first-order method) agree on parallel links for both equilibria.
/// (Smooth-marginal families: the FW SystemOptimum gap certificate is
/// undefined at piecewise-linear kinks — see `random_mixed` docs.)
#[test]
fn equalizer_vs_frank_wolfe() {
    for seed in 0..8u64 {
        let links = random_mixed_smooth(5, 1.5, seed);
        let inst = as_network(&links);
        let opts = FwOptions::default();
        for model in [CostModel::Wardrop, CostModel::SystemOptimum] {
            let fw = stackopt::solver::frank_wolfe::solve_assignment(&inst, model, &opts);
            assert!(fw.converged, "seed {seed} {model:?}");
            let eq = match model {
                CostModel::Wardrop => links.nash(),
                CostModel::SystemOptimum => links.optimum(),
            };
            // Compare total costs (flows may permute among identical links).
            let c_fw = links.cost(fw.flow.as_slice());
            let c_eq = links.cost(eq.flows());
            assert!(
                (c_fw - c_eq).abs() < 1e-5 * c_eq.max(1.0),
                "seed {seed} {model:?}: FW {c_fw} vs equalizer {c_eq}"
            );
        }
    }
}

/// Frank–Wolfe and the path-based projected-gradient solver agree on small
/// networks.
#[test]
fn frank_wolfe_vs_pgd() {
    for seed in [3u64, 9, 21] {
        let inst = random_layered_network(2, 2, 1.0, seed);
        let opts = FwOptions::default();
        for model in [CostModel::Wardrop, CostModel::SystemOptimum] {
            let fw = stackopt::solver::frank_wolfe::solve_assignment(&inst, model, &opts);
            let pg = path_equilibrium(&inst, model, 100, 30_000);
            let c_fw = inst.cost(fw.flow.as_slice());
            let c_pg = inst.cost(pg.flow.as_slice());
            // PGD is the lower-precision oracle; costs agree to ~1e-4.
            assert!(
                (c_fw - c_pg).abs() < 1e-3 * c_fw.max(1.0),
                "seed {seed} {model:?}: FW {c_fw} vs PGD {c_pg}"
            );
        }
    }
}

/// OpTop (parallel-link specialisation) and MOP (general nets) compute the
/// same β on parallel links.
#[test]
fn optop_vs_mop_on_parallel_links() {
    for seed in 0..6u64 {
        let links = random_common_slope(4, 1.0, seed);
        let ot = optop(&links);
        let mp = mop(&as_network(&links), &FwOptions::default());
        assert!(
            (ot.beta - mp.beta).abs() < 1e-4,
            "seed {seed}: OpTop β {} vs MOP β {}",
            ot.beta,
            mp.beta
        );
    }
}

/// Theorem 2.4's polynomial algorithm never loses to exhaustive search
/// (and never claims better than the search can verify by evaluation).
#[test]
fn theorem_24_vs_brute_force() {
    let mut hard_side_seen = 0;
    for seed in 0..10u64 {
        let links = random_common_slope(3, 1.0, seed);
        let beta = optop(&links).beta;
        for &alpha in &[0.15, 0.35, 0.6] {
            let exact = linear_optimal_strategy(&links, alpha);
            let (_, brute) = brute_force_optimal(&links, alpha, &BruteOptions::default());
            assert!(
                exact.cost <= brute + 1e-5,
                "seed {seed} α={alpha}: exact {} > brute {brute}",
                exact.cost
            );
            // The claimed cost must be realisable.
            let realised = links.induced_cost(&exact.strategy);
            assert!(
                (realised - exact.cost).abs() < 1e-5 * exact.cost.max(1.0),
                "seed {seed} α={alpha}: claimed {} realised {realised}",
                exact.cost
            );
            if alpha < beta {
                hard_side_seen += 1;
            }
        }
    }
    assert!(
        hard_side_seen > 0,
        "the sweep must hit the hard side at least once"
    );
}

/// LLF's 1/α guarantee and the induced-cost sandwich C(O) ≤ C(S+T) ≤ C(N)…
/// note the upper end: LLF can exceed C(N) for *no* strategy class here, it
/// is bounded by 1/α·C(O) instead.
#[test]
fn llf_guarantee_on_random_instances() {
    for seed in 0..10u64 {
        let links = random_mixed(5, 2.0, seed);
        let copt = links.cost(links.optimum().flows());
        for &alpha in &[0.2, 0.5, 0.8] {
            let (_, cost) = stackopt::core::llf::llf(&links, alpha);
            assert!(cost >= copt - 1e-7, "cannot beat the optimum");
            assert!(
                cost <= copt / alpha + 1e-6,
                "seed {seed} α={alpha}: LLF {cost} breaks 1/α bound {}",
                copt / alpha
            );
        }
    }
}

/// The certified sandwich on strategies: OpTop at β enforces C(O); every
/// scaled-down version stays strictly above; LLF/SCALE interpolate.
#[test]
fn strategy_cost_sandwich() {
    let links = ParallelLinks::new(
        vec![
            LatencyFn::affine(1.0, 0.0),
            LatencyFn::affine(1.5, 0.2),
            LatencyFn::constant(1.1),
        ],
        1.0,
    );
    let ot = optop(&links);
    let c_opt = ot.optimum_cost;
    let c_nash = ot.nash_cost;
    assert!(c_opt < c_nash, "instance must be nontrivial");
    for &frac in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let s: Vec<f64> = ot.strategy.iter().map(|x| x * frac).collect();
        let c = links.induced_cost(&s);
        assert!(c >= c_opt - 1e-9 && c <= c_nash + 1e-7, "frac {frac}: {c}");
    }
}
