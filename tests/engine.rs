//! Engine correctness: element-wise parity with sequential solves, cache
//! semantics (warm runs bit-identical to cold, in-fleet dedup), and
//! exactly-once streaming delivery.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;
use stackopt::api::engine::run_chunked_reference;
use stackopt::api::{
    parse_batch_file, Batch, Engine, Report, Scenario, SolveCache, SoptError, Task,
};
use stackopt::fleet::{generate_fleet, Family};
use stackopt::instances::random::random_layered_network;

/// A *uniform* fleet: same-shaped small parallel scenarios, distinct seeds.
fn uniform_fleet(n: usize) -> Vec<Scenario> {
    parse_batch_file(&generate_fleet(Family::Affine, n, 101, Some(4), 1.0, None).unwrap()).unwrap()
}

/// A *skewed* fleet: a large layered network up front (orders of magnitude
/// costlier under Frank–Wolfe), then many tiny parallel scenarios — the
/// shape equal-count chunking handles worst.
fn skewed_fleet(tiny: usize) -> Vec<Scenario> {
    let mut fleet = vec![Scenario::from(random_layered_network(3, 4, 2.0, 5))];
    fleet.extend(uniform_fleet(tiny));
    fleet
}

/// Canonical comparison form: JSON for successes, Debug for typed errors.
fn rendered(results: &[Result<Report, SoptError>]) -> Vec<String> {
    results
        .iter()
        .map(|r| match r {
            Ok(report) => report.to_json(),
            Err(e) => format!("{e:?}"),
        })
        .collect()
}

fn sequential(fleet: &[Scenario], task: Task) -> Vec<Result<Report, SoptError>> {
    fleet
        .iter()
        .map(|sc| sc.clone().solve().task(task).run())
        .collect()
}

#[test]
fn engine_matches_sequential_solves_on_uniform_fleets() {
    let fleet = uniform_fleet(24);
    let expected = rendered(&sequential(&fleet, Task::Beta));
    for threads in [1, 2, 8] {
        let got = Engine::new(fleet.clone())
            .task(Task::Beta)
            .threads(threads)
            .run();
        assert_eq!(rendered(&got), expected, "threads = {threads}");
    }
}

#[test]
fn engine_matches_sequential_solves_on_skewed_fleets() {
    let fleet = skewed_fleet(16);
    let expected = rendered(&sequential(&fleet, Task::Beta));
    for threads in [1, 2, 8] {
        let got = Engine::new(fleet.clone())
            .task(Task::Beta)
            .threads(threads)
            .run();
        assert_eq!(rendered(&got), expected, "threads = {threads}");
    }
}

#[test]
fn engine_matches_the_chunked_reference_and_batch_wrapper() {
    let fleet = skewed_fleet(12);
    let engine = rendered(&Engine::new(fleet.clone()).threads(4).run());
    let batch = rendered(&Batch::new(fleet.clone()).threads(4).run());
    let chunked = rendered(&run_chunked_reference(fleet, &Default::default(), 4));
    assert_eq!(engine, batch);
    assert_eq!(engine, chunked);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Engine results are element-wise identical to sequential `Solve`
    /// runs across fleet shapes, tasks, and thread counts.
    #[test]
    fn engine_parity_is_a_property(seed in 0u64..10_000) {
        let n = 3 + (seed % 10) as usize;
        let family = Family::ALL[(seed % 4) as usize];
        let task = [Task::Beta, Task::Equilib, Task::Tolls][(seed % 3) as usize];
        let threads = [1usize, 2, 8][(seed % 3) as usize];
        let fleet =
            parse_batch_file(&generate_fleet(family, n, seed, None, 1.5, None).unwrap()).unwrap();
        let expected = rendered(&sequential(&fleet, task));
        let got = Engine::new(fleet).task(task).threads(threads).run();
        prop_assert_eq!(rendered(&got), expected);
    }
}

#[test]
fn errors_stay_in_their_slots() {
    let scenarios = vec![
        Scenario::parse("x, 1.0").unwrap(),
        Scenario::parse("mm1:1.0").unwrap(), // rate 1 ≥ capacity 1: infeasible
        Scenario::parse("x, 1.0").unwrap(),
    ];
    let reports = Engine::new(scenarios).threads(2).run();
    assert!(reports[0].is_ok());
    assert!(matches!(
        reports[1].as_ref().unwrap_err(),
        SoptError::Infeasible { .. }
    ));
    assert!(reports[2].is_ok());
}

#[test]
fn warm_cache_runs_are_bit_identical_to_cold() {
    let fleet = uniform_fleet(20);
    let cache = Arc::new(SolveCache::new());
    let (cold, cold_stats) = Engine::new(fleet.clone())
        .cache(Arc::clone(&cache))
        .threads(4)
        .run_stats();
    assert_eq!(cold_stats.cache_hits, 0);
    let (warm, warm_stats) = Engine::new(fleet).cache(cache).threads(4).run_stats();
    // ≥ 90% hit rate required; distinct representable scenarios give 100%.
    assert!(
        warm_stats.hit_rate() >= 0.9,
        "hit rate {}",
        warm_stats.hit_rate()
    );
    assert_eq!(warm_stats.cache_misses, 0);
    assert_eq!(rendered(&cold), rendered(&warm));
}

#[test]
fn equilibrium_memo_is_shared_across_tasks_and_alphas() {
    let cache = Arc::new(SolveCache::new());
    let scenario = || vec![Scenario::parse("x, 2x+0.3, 1.0").unwrap()];
    // equilib computes both profiles fresh…
    let (_, s1) = Engine::new(scenario())
        .task(Task::Equilib)
        .cache(Arc::clone(&cache))
        .run_stats();
    assert_eq!((s1.eq_hits, s1.eq_misses), (0, 2));
    // …llf at α = 0.3 reuses the memoized optimum…
    let (_, s2) = Engine::new(scenario())
        .task(Task::Llf)
        .alpha(0.3)
        .cache(Arc::clone(&cache))
        .run_stats();
    assert_eq!((s2.eq_hits, s2.eq_misses), (1, 0));
    // …and a different α is a report-cache miss but still no re-solve of
    // the optimum (the "repeated optimum solves inside llf" case).
    let (_, s3) = Engine::new(scenario())
        .task(Task::Llf)
        .alpha(0.6)
        .cache(Arc::clone(&cache))
        .run_stats();
    assert_eq!(s3.cache_misses, 1);
    assert_eq!((s3.eq_hits, s3.eq_misses), (1, 0));
}

#[test]
fn network_profile_memo_is_shared_across_tasks() {
    let cache = Arc::new(SolveCache::new());
    let scenario =
        || vec![Scenario::parse("nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0").unwrap()];
    // equilib solves both network profiles cold…
    let (_, s1) = Engine::new(scenario())
        .task(Task::Equilib)
        .cache(Arc::clone(&cache))
        .run_stats();
    assert_eq!((s1.net_profile_hits, s1.net_profile_misses), (0, 2));
    // …beta (MOP + Nash anchor) reuses both…
    let (r2, s2) = Engine::new(scenario())
        .task(Task::Beta)
        .cache(Arc::clone(&cache))
        .run_stats();
    assert!((r2[0].as_ref().unwrap().data.as_beta().unwrap().beta - 0.5).abs() < 1e-5);
    assert_eq!((s2.net_profile_hits, s2.net_profile_misses), (2, 0));
    // …and a whole curve α-sweep adds no fresh equilibrium solve either.
    let (_, s3) = Engine::new(scenario())
        .task(Task::Curve)
        .cache(Arc::clone(&cache))
        .run_stats();
    assert_eq!((s3.net_profile_hits, s3.net_profile_misses), (2, 0));
    // A different tolerance is a different profile entry (knob-keyed).
    let (_, s4) = Engine::new(scenario())
        .task(Task::Equilib)
        .tolerance(1e-6)
        .cache(Arc::clone(&cache))
        .run_stats();
    assert_eq!((s4.net_profile_hits, s4.net_profile_misses), (0, 2));
}

#[test]
fn bounded_cache_respects_capacity_and_stays_bit_identical() {
    // 6 distinct network scenarios × (nash + optimum) = 12 would-be profile
    // entries against a capacity of 2; 6 reports against a capacity of 4.
    let fleet: Vec<Scenario> = (2..8)
        .map(|n| {
            Scenario::parse(&format!("nodes=2; 0->1: {n}x; 0->1: 1.0; demand 0->1: 1.0")).unwrap()
        })
        .collect();
    let cache = Arc::new(SolveCache::bounded(4, 2));
    let (cold, s1) = Engine::new(fleet.clone())
        .task(Task::Equilib)
        .cache(Arc::clone(&cache))
        .threads(1)
        .run_stats();
    assert!(cache.len() <= 4, "report table at {}", cache.len());
    assert!(
        cache.profile_len() <= 2,
        "profile table at {}",
        cache.profile_len()
    );
    assert!(
        s1.profile_evictions > 0,
        "expected profile evictions, stats {s1:?}"
    );
    // Evicted entries recompute deterministically: the warm re-run is
    // bit-identical even though most entries were evicted.
    let (warm, _) = Engine::new(fleet)
        .task(Task::Equilib)
        .cache(Arc::clone(&cache))
        .threads(1)
        .run_stats();
    assert_eq!(rendered(&cold), rendered(&warm));
    assert!(cache.len() <= 4 && cache.profile_len() <= 2);
}

#[test]
fn streaming_delivers_every_index_exactly_once() {
    let fleet = skewed_fleet(20);
    let n = fleet.len();
    for threads in [1, 2, 8] {
        let mut counts = vec![0usize; n];
        let stats = Engine::new(fleet.clone())
            .threads(threads)
            .run_streamed(|i, _| counts[i] += 1);
        assert_eq!(counts, vec![1; n], "threads = {threads}");
        assert_eq!(stats.delivered, n);
    }
}

#[test]
fn ordered_streaming_is_input_ordered_and_streams_everything() {
    let fleet = uniform_fleet(15);
    let mut order = Vec::new();
    Engine::new(fleet).threads(4).run_ordered(|i, r| {
        assert!(r.is_ok());
        order.push(i);
    });
    assert_eq!(order, (0..15).collect::<Vec<_>>());
}

#[test]
fn stream_iterator_yields_input_order_and_supports_early_drop() {
    let fleet = uniform_fleet(12);
    let indices: BTreeSet<usize> = Engine::new(fleet.clone())
        .threads(2)
        .stream()
        .map(|(i, r)| {
            assert!(r.is_ok());
            i
        })
        .collect();
    assert_eq!(indices, (0..12).collect());
    // Early drop cancels the background run without deadlocking.
    let first: Vec<usize> = Engine::new(fleet)
        .threads(2)
        .stream()
        .take(2)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(first, vec![0, 1]);
}

#[test]
fn gen_fleets_flow_through_the_engine_for_every_family() {
    for family in Family::ALL {
        let fleet =
            parse_batch_file(&generate_fleet(family, 6, 3, None, 1.0, None).unwrap()).unwrap();
        let (reports, stats) = Engine::new(fleet).threads(2).run_stats();
        assert_eq!(reports.len(), 6, "{family}");
        for r in reports {
            r.unwrap_or_else(|e| panic!("{family}: {e}"));
        }
        assert_eq!(stats.delivered, 6);
    }
}
