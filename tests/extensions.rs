//! End-to-end tests for the extension surface: piecewise-linear latencies in
//! the equalizer, marginal-cost tolls on paper instances, the anarchy-value
//! curve, and the CLI spec parser feeding real computations.

use stackopt::core::curve::anarchy_curve;
use stackopt::core::optop::optop;
use stackopt::core::tolls::{marginal_cost_tolls, marginal_cost_tolls_network};
use stackopt::equilibrium::certify::certify_parallel;
use stackopt::equilibrium::network::network_nash;
use stackopt::instances::braess::fig7_instance;
use stackopt::instances::fig4::fig4_links;
use stackopt::prelude::*;
use stackopt::solver::frank_wolfe::FwOptions;
use stackopt::solver::objective::CostModel;
use stackopt::spec::parse_links;

#[test]
fn piecewise_links_equalize_and_certify() {
    // Two piecewise-linear links with distinct kink structure.
    let links = ParallelLinks::new(
        vec![
            LatencyFn::piecewise(0.2, &[(0.0, 1.0), (0.5, 4.0)]),
            LatencyFn::piecewise(0.0, &[(0.0, 2.0), (1.0, 2.5)]),
        ],
        1.5,
    );
    let n = links.nash();
    let o = links.optimum();
    certify_parallel(links.latencies(), n.flows(), 1.5, CostModel::Wardrop, 1e-6)
        .expect("piecewise Nash certified");
    certify_parallel(
        links.latencies(),
        o.flows(),
        1.5,
        CostModel::SystemOptimum,
        1e-6,
    )
    .expect("piecewise optimum certified");
    assert!(links.cost(o.flows()) <= links.cost(n.flows()) + 1e-9);

    // OpTop runs unchanged on the piecewise class.
    let r = optop(&links);
    assert!((links.induced_cost(&r.strategy) - r.optimum_cost).abs() < 1e-6);
}

#[test]
fn tolls_and_stackelberg_agree_on_fig4() {
    let links = fig4_links();
    let ot = optop(&links);
    let tl = marginal_cost_tolls(&links);
    // Both restore the optimum cost (tolls are transfers: evaluate the
    // original latencies at the tolled equilibrium).
    let tolled_nash = tl.tolled.nash();
    assert!((links.cost(tolled_nash.flows()) - ot.optimum_cost).abs() < 1e-6);
    assert!((links.induced_cost(&ot.strategy) - ot.optimum_cost).abs() < 1e-8);
    // The flows agree with the optimum on every link.
    for (i, (got, want)) in tolled_nash.flows().iter().zip(&tl.optimum).enumerate() {
        assert!((got - want).abs() < 1e-6, "link {i}");
    }
}

#[test]
fn network_tolls_on_fig7() {
    let inst = fig7_instance(0.05);
    let opts = FwOptions::default();
    let t = marginal_cost_tolls_network(&inst, &opts);
    let nash = network_nash(&t.tolled, &opts);
    // Latency cost of the tolled equilibrium = C(O) of the original.
    let c = inst.cost(nash.flow.as_slice());
    let copt = inst.cost(&t.optimum);
    assert!((c - copt).abs() < 1e-4, "tolled Nash {c} vs C(O) {copt}");
}

#[test]
fn curve_crossover_matches_beta_on_fig4() {
    let links = fig4_links();
    let alphas: Vec<f64> = (0..=24).map(|k| k as f64 / 24.0).collect();
    let curve = anarchy_curve(&links, &alphas);
    for p in &curve.points {
        if p.alpha >= curve.beta {
            assert!(
                (p.ratio - 1.0).abs() < 1e-5,
                "α={} ratio={}",
                p.alpha,
                p.ratio
            );
        }
        assert!(p.ratio >= 1.0 - 1e-9);
        assert!(p.cost <= curve.nash_cost + 1e-7);
    }
    // The curve is monotone nonincreasing in α.
    for w in curve.points.windows(2) {
        assert!(w[1].cost <= w[0].cost + 1e-6);
    }
}

#[test]
fn spec_parser_drives_real_computation() {
    // The session API end to end: parse → solve → typed report.
    let report = Scenario::parse("x, 1.0")
        .and_then(|s| s.solve().task(Task::Beta).run())
        .expect("pigou spec solves");
    assert!((report.data.as_beta().unwrap().beta - 0.5).abs() < 1e-9);

    // The low-level parser remains available for custom pipelines.
    let lats = parse_links("mm1:2.0, mm1:4.0, 0.9").expect("mixed spec");
    let links = ParallelLinks::new(lats, 2.0);
    let n = links.nash();
    certify_parallel(links.latencies(), n.flows(), 2.0, CostModel::Wardrop, 1e-6)
        .expect("spec-built Nash certified");
}

#[test]
fn session_api_matches_algorithm_surface_on_fig4() {
    // The api dispatches to the same algorithms: identical numbers.
    let report = Scenario::from(fig4_links())
        .solve()
        .task(Task::Beta)
        .run()
        .expect("fig4 solves");
    let b = report.data.as_beta().unwrap();
    let ot = optop(&fig4_links());
    assert!((b.beta - ot.beta).abs() < 1e-12);
    assert!((b.nash_cost - ot.nash_cost).abs() < 1e-12);
    assert!((b.optimum_cost - ot.optimum_cost).abs() < 1e-12);
    for (a, e) in b.strategy.iter().zip(&ot.strategy) {
        assert!((a - e).abs() < 1e-12);
    }
}
