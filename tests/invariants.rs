//! Property-based integration tests: the paper's structure theorems and
//! bounds as invariants over randomized instances (Experiment E12's
//! mechanical core).

use proptest::prelude::*;
use stackopt::core::optop::optop;
use stackopt::core::theorems::{
    frozen_induced_flow, monotonicity_violation, useless_strategy_deviation,
};
use stackopt::equilibrium::certify::certify_parallel;
use stackopt::equilibrium::cost::coordination_ratio;
use stackopt::instances::random::{random_affine, random_mixed};
use stackopt::solver::objective::CostModel;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Proposition 7.1: Nash link loads are monotone in the total rate.
    #[test]
    fn prop_7_1_monotonicity(seed in 0u64..5000, r1 in 0.05..2.0f64, r2 in 0.05..2.0f64) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let links = random_mixed(5, hi, seed);
        let v = monotonicity_violation(links.latencies(), lo, hi);
        prop_assert!(v <= 1e-6, "violation {v}");
    }

    /// Theorem 7.2: strategies below the Nash profile change nothing.
    #[test]
    fn thm_7_2_useless_strategies(seed in 0u64..5000, frac in 0.0..1.0f64) {
        let links = random_mixed(4, 1.0, seed);
        let nash = links.nash().flows().to_vec();
        let s: Vec<f64> = nash.iter().map(|n| n * frac).collect();
        let dev = useless_strategy_deviation(&links, &s);
        prop_assert!(dev <= 1e-6, "S+T deviates from N by {dev}");
    }

    /// Theorem 7.4 / Lemma 7.5: frozen links get no induced flow.
    #[test]
    fn thm_7_4_frozen_links(seed in 0u64..5000, bump in 0.0..0.3f64, k in 0usize..4) {
        let links = random_mixed(4, 1.0, seed);
        let nash = links.nash().flows().to_vec();
        // Freeze link k at its Nash load plus a bump (capped by the budget).
        let mut s = vec![0.0; 4];
        s[k] = (nash[k] + bump).min(links.rate());
        if let Ok(cap_ok) = links.try_induced(&s) {
            let _ = cap_ok;
            let t = frozen_induced_flow(&links, &s);
            prop_assert!(t <= 1e-6, "frozen link received {t}");
        }
    }

    /// Expression (1) for linear latencies: the coordination ratio never
    /// exceeds 4/3 (Roughgarden–Tardos; Pigou attains it).
    #[test]
    fn linear_poa_bounded_by_four_thirds(seed in 0u64..5000, rate in 0.1..3.0f64) {
        let links = random_affine(5, rate, seed);
        let cn = links.cost(links.nash().flows());
        let co = links.cost(links.optimum().flows());
        let ratio = coordination_ratio(cn, co);
        prop_assert!(ratio <= 4.0 / 3.0 + 1e-6, "PoA {ratio}");
        prop_assert!(ratio >= 1.0 - 1e-9);
    }

    /// Corollary 2.2 end-to-end: OpTop's strategy always induces the
    /// optimum, certified against the KKT conditions, and β ∈ [0, 1].
    #[test]
    fn optop_enforces_optimum(seed in 0u64..5000, rate in 0.2..2.0f64) {
        let links = random_mixed(5, rate, seed);
        let r = optop(&links);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.beta));
        let ind = links.induced(&r.strategy);
        let c = links.cost(&ind.total);
        prop_assert!((c - r.optimum_cost).abs() <= 1e-5 * r.optimum_cost.max(1.0),
            "induced {c} vs C(O) {}", r.optimum_cost);
        // Certify optimality of the induced total flow.
        let cert = certify_parallel(links.latencies(), &ind.total, rate,
            CostModel::SystemOptimum, 1e-4);
        prop_assert!(cert.is_ok(), "{cert:?}");
    }

    /// The equalizer's equilibria satisfy their defining certificates.
    #[test]
    fn equilibria_certified(seed in 0u64..5000, rate in 0.1..2.5f64) {
        let links = random_mixed(6, rate, seed);
        let n = links.nash();
        let o = links.optimum();
        prop_assert!(certify_parallel(links.latencies(), n.flows(), rate,
            CostModel::Wardrop, 1e-6).is_ok());
        prop_assert!(certify_parallel(links.latencies(), o.flows(), rate,
            CostModel::SystemOptimum, 1e-6).is_ok());
        // And C(O) ≤ C(N).
        prop_assert!(links.cost(o.flows()) <= links.cost(n.flows()) + 1e-9);
    }

    /// Scaling OpTop's strategy by γ < 1 can never do better than the full
    /// strategy (minimality flavour of Corollary 2.2 along this ray).
    #[test]
    fn optop_ray_monotone(seed in 0u64..5000, gamma in 0.0..1.0f64) {
        let links = random_mixed(4, 1.0, seed);
        let r = optop(&links);
        let scaled: Vec<f64> = r.strategy.iter().map(|s| s * gamma).collect();
        let c = links.induced_cost(&scaled);
        prop_assert!(c >= r.optimum_cost - 1e-7, "scaled OpTop beat C(O): {c}");
    }
}
