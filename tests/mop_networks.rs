//! Randomized end-to-end MOP validation on layered networks: the strategy
//! must induce the optimum and β must be minimal along the scaling ray.

use stackopt::core::mop::{mop, mop_greedy};
use stackopt::equilibrium::certify::certify_network;
use stackopt::equilibrium::network::induced_network;
use stackopt::instances::random::random_layered_network;
use stackopt::solver::frank_wolfe::FwOptions;
use stackopt::solver::objective::CostModel;

fn opts() -> FwOptions {
    FwOptions {
        rel_gap: 1e-10,
        ..FwOptions::default()
    }
}

#[test]
fn mop_induces_optimum_on_random_layered_nets() {
    for seed in 0..8u64 {
        let inst = random_layered_network(3, 3, 2.0, seed);
        let r = mop(&inst, &opts());
        assert!(
            (0.0..=1.0 + 1e-6).contains(&r.beta),
            "seed {seed}: β = {}",
            r.beta
        );

        // The optimum itself is certified.
        certify_network(&inst, &r.optimum, CostModel::SystemOptimum, 1e-4)
            .unwrap_or_else(|e| panic!("seed {seed}: optimum not certified: {e}"));

        // Leader + induced followers = optimum cost.
        let follower = induced_network(&inst, &r.leader, r.leader_value, &opts());
        let total: Vec<f64> = r
            .leader
            .as_slice()
            .iter()
            .zip(follower.flow.as_slice())
            .map(|(a, b)| a + b)
            .collect();
        let cost = inst.cost(&total);
        assert!(
            (cost - r.optimum_cost).abs() < 2e-4 * r.optimum_cost.max(1.0),
            "seed {seed}: induced {cost} vs C(O) {}",
            r.optimum_cost
        );
    }
}

#[test]
fn mop_beta_never_exceeds_greedy_on_random_nets() {
    for seed in 0..8u64 {
        let inst = random_layered_network(3, 3, 2.0, seed);
        let exact = mop(&inst, &opts());
        let greedy = mop_greedy(&inst, &opts());
        assert!(
            exact.beta <= greedy.beta + 1e-6,
            "seed {seed}: exact β {} > greedy β {}",
            exact.beta,
            greedy.beta
        );
    }
}

#[test]
fn mop_leader_and_free_parts_partition_optimum() {
    for seed in [2u64, 5, 11] {
        let inst = random_layered_network(2, 4, 1.5, seed);
        let r = mop(&inst, &opts());
        for e in 0..inst.num_edges() {
            let o = r.optimum.as_slice()[e];
            let fr = r.free_flow.as_slice()[e];
            let ld = r.leader.as_slice()[e];
            assert!(fr >= -1e-9 && ld >= -1e-9, "seed {seed} edge {e}");
            assert!(fr <= o + 1e-6, "seed {seed} edge {e}: free exceeds optimum");
            assert!(
                (fr + ld - o).abs() < 1e-6,
                "seed {seed} edge {e}: partition broken"
            );
        }
        assert!((r.free_value + r.leader_value - inst.rate).abs() < 1e-6);
    }
}

#[test]
fn scaled_down_mop_strategy_misses_optimum() {
    // Minimality along the ray: 80% of the MOP strategy cannot induce C(O)
    // whenever β > 0 and the instance is not already optimal at Nash.
    for seed in 0..8u64 {
        let inst = random_layered_network(3, 3, 2.0, seed);
        let r = mop(&inst, &opts());
        if r.beta < 0.05 {
            continue;
        }
        let scaled: Vec<f64> = r.leader.as_slice().iter().map(|x| x * 0.8).collect();
        let follower = induced_network(
            &inst,
            &stackopt::network::flow::EdgeFlow(scaled.clone()),
            r.leader_value * 0.8,
            &opts(),
        );
        let total: Vec<f64> = scaled
            .iter()
            .zip(follower.flow.as_slice())
            .map(|(a, b)| a + b)
            .collect();
        let cost = inst.cost(&total);
        assert!(
            cost >= r.optimum_cost - 1e-6,
            "seed {seed}: scaled strategy beat the optimum?!"
        );
    }
}
