//! Integration tests pinning every number of the paper's worked examples
//! (Experiments E1–E4 of DESIGN.md).

use stackopt::core::mop::mop;
use stackopt::core::optop::optop;
use stackopt::core::theorems::swap_reassignment;
use stackopt::equilibrium::cost::coordination_ratio;
use stackopt::equilibrium::network::{induced_network, network_nash};
use stackopt::instances::braess::{fig7_expected, fig7_instance};
use stackopt::instances::fig4::{fig4_expected, fig4_links};
use stackopt::instances::pigou::{pigou_expected, pigou_links};
use stackopt::solver::frank_wolfe::FwOptions;

/// E1 — Figs. 1–3 (Pigou parlance): the worst anarchy value 4/3 and the
/// wise strategy S = ⟨0, 1/2⟩ inducing the best possible a-posteriori value 1.
#[test]
fn e1_pigou_figures() {
    let links = pigou_links();
    let e = pigou_expected();

    let nash = links.nash();
    let opt = links.optimum();
    assert!((links.cost(nash.flows()) - e.nash_cost).abs() < 1e-9);
    assert!((links.cost(opt.flows()) - e.optimum_cost).abs() < 1e-9);
    assert!((coordination_ratio(e.nash_cost, e.optimum_cost) - e.coordination_ratio).abs() < 1e-12);

    // OpTop recovers Fig. 2's strategy and Fig. 3's induced equilibrium.
    let r = optop(&links);
    assert!((r.beta - e.beta).abs() < 1e-9);
    for (got, want) in r.strategy.iter().zip(&e.strategy) {
        assert!((got - want).abs() < 1e-9);
    }
    let induced = links.induced(&r.strategy);
    assert!((induced.follower[0] - 0.5).abs() < 1e-9, "T = ⟨1/2, 0⟩");
    assert!(induced.follower[1].abs() < 1e-9);
    assert!((links.cost(&induced.total) - e.optimum_cost).abs() < 1e-9);
}

/// E2 — Figs. 4–6: the OpTop walkthrough on the 5-link system.
#[test]
fn e2_optop_walkthrough() {
    let links = fig4_links();
    let e = fig4_expected();
    let r = optop(&links);

    // Fig. 4: initial equilibria.
    for i in 0..5 {
        assert!((r.nash[i] - e.nash[i]).abs() < 1e-9, "N link {i}");
        assert!((r.optimum[i] - e.optimum[i]).abs() < 1e-9, "O link {i}");
    }
    // Fig. 5: under-loaded {M4, M5} frozen at o4, o5.
    assert_eq!(r.rounds[0].frozen, vec![3, 4]);
    assert!((r.strategy[3] - e.optimum[3]).abs() < 1e-9);
    assert!((r.strategy[4] - e.optimum[4]).abs() < 1e-9);
    // Fig. 6: the remaining selfish flow lands on the optimum.
    let induced = links.induced(&r.strategy);
    for i in 0..5 {
        assert!(
            (induced.total[i] - e.optimum[i]).abs() < 1e-7,
            "S+T link {i}"
        );
    }
    assert!((r.beta - e.beta).abs() < 1e-9);
}

/// E3 — Fig. 7: MOP on the Braess-type net across ε.
#[test]
fn e3_fig7_mop() {
    let opts = FwOptions::default();
    for &eps in &[0.0, 0.01, 0.05, 0.1] {
        let inst = fig7_instance(eps);
        let e = fig7_expected(eps);
        let r = mop(&inst, &opts);

        // Fig. 7(a): optimal edge flows.
        for (i, want) in e.optimum.iter().enumerate() {
            assert!(
                (r.optimum.as_slice()[i] - want).abs() < 1e-4,
                "ε={eps} edge {i}: {} ≠ {want}",
                r.optimum.as_slice()[i]
            );
        }
        // Fig. 7(b): shortest-path flow 1/2 − 2ε.
        assert!(
            (r.free_value - e.shortest_path_flow).abs() < 1e-4,
            "ε={eps}"
        );
        // Fig. 7(d): β_G = 1/2 + 2ε.
        assert!((r.beta - e.beta).abs() < 1e-4, "ε={eps}: β = {}", r.beta);

        // The strategy achieves approximation guarantee exactly 1
        // (Remark 3.1: despite [41, Ex 6.5.1], MOP hits the optimum here).
        let follower = induced_network(&inst, &r.leader, r.leader_value, &opts);
        let total: Vec<f64> = r
            .leader
            .as_slice()
            .iter()
            .zip(follower.flow.as_slice())
            .map(|(a, b)| a + b)
            .collect();
        assert!((inst.cost(&total) - e.optimum_cost).abs() < 1e-4, "ε={eps}");

        // Cross-check the closed-form Nash cost 2 − 4ε.
        let nash = network_nash(&inst, &opts);
        assert!(
            (inst.cost(nash.flow.as_slice()) - e.nash_cost).abs() < 1e-4,
            "ε={eps}"
        );
    }
}

/// E4 — Figs. 8–10: the Lemma 6.1 interchange never increases cost, over a
/// deterministic grid of configurations.
#[test]
fn e4_swap_lemma_grid() {
    let mut checked = 0usize;
    for a10 in 1..=20u32 {
        let a = a10 as f64 / 4.0;
        for b1_10 in 0..10u32 {
            for db in 1..10u32 {
                let b1 = b1_10 as f64 / 5.0;
                let b2 = b1 + db as f64 / 5.0;
                for load2_10 in 1..8u32 {
                    let load2 = load2_10 as f64 / 4.0;
                    // Smallest premise-satisfying s1, plus headroom variants.
                    let s1_min = (a * load2 + b2 - b1) / a;
                    for extra in [0.0, 0.5, 2.0] {
                        let s1 = s1_min + extra;
                        let out = swap_reassignment(a, b1, b2, s1, load2);
                        assert!(
                            out.after <= out.before + 1e-9 * out.before.max(1.0),
                            "a={a} b1={b1} b2={b2} s1={s1} load2={load2}: {} > {}",
                            out.after,
                            out.before
                        );
                        checked += 1;
                    }
                }
            }
        }
    }
    assert!(checked > 10_000, "swept {checked} configurations");
}
