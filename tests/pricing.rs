//! Acceptance tests for the pricing task family: closed-form vs
//! best-response parity on affine parallel links (fixed and randomized),
//! the sub-game recursion through the session API, and the typed error
//! matrix for the network/multicommodity classes.

use proptest::prelude::*;
use stackopt::api::{Scenario, SoptError, Task};
use stackopt::instances::random::random_affine;
use stackopt::pricing::{best_response, closed_form_affine};

fn pricing_report(spec: &str) -> Result<stackopt::api::Report, SoptError> {
    Scenario::parse(spec)
        .unwrap()
        .solve()
        .task(Task::Pricing)
        .run()
}

#[test]
fn closed_form_and_best_response_agree_on_a_fixed_instance() {
    let links = stackopt::equilibrium::parallel::ParallelLinks::new(
        vec![
            stackopt::latency::LatencyFn::affine(1.0, 0.2),
            stackopt::latency::LatencyFn::affine(2.0, 0.3),
            stackopt::latency::LatencyFn::affine(0.7, 0.0),
        ],
        1.5,
    );
    let cf = closed_form_affine(&links).unwrap();
    let br = best_response(&links, 64, 400, 1e-8).unwrap();
    for i in 0..3 {
        assert!(
            (cf.prices[i] - br.prices[i]).abs() <= 1e-6,
            "price {i}: {} vs {}",
            cf.prices[i],
            br.prices[i]
        );
    }
    assert!((cf.revenue - br.revenue).abs() <= 1e-6);
    assert!((cf.level - br.level).abs() <= 1e-6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The closed-form linear system and the grid best-response dynamics
    /// find the same competitive equilibrium on random affine instances.
    #[test]
    fn prop_closed_form_matches_best_response(
        seed in 0u64..5000,
        m in 2usize..5,
        rate in 0.5..2.0f64,
    ) {
        let links = random_affine(m, rate, seed);
        // Randomized intercepts can price a link out or degenerate the
        // sub-game; parity is claimed only where the closed form is
        // defined.
        if let Ok(cf) = closed_form_affine(&links) {
            let br = best_response(&links, 64, 400, 1e-8).unwrap();
            prop_assert!((cf.revenue - br.revenue).abs() <= 1e-6,
                "revenue {} vs {}", cf.revenue, br.revenue);
            for i in 0..m {
                prop_assert!((cf.prices[i] - br.prices[i]).abs() <= 1e-6,
                    "price {i}: {} vs {}", cf.prices[i], br.prices[i]);
            }
        }
    }
}

#[test]
fn subgame_recursion_drops_the_dominated_link_through_the_api() {
    // Two identical cheap links and one with an enormous intercept: the
    // recursion prices the latter out, and the survivors play the
    // symmetric duopoly (prices 1, revenue 1 at a = r = 1).
    let report = pricing_report("x, x, x+100").unwrap();
    let p = report.data.as_pricing().unwrap();
    assert_eq!(p.method, "closed-form");
    assert_eq!(p.prices[2], 0.0);
    assert_eq!(p.flows[2], 0.0);
    assert!((p.prices[0] - 1.0).abs() < 1e-9, "{:?}", p.prices);
    assert!((p.revenue - 1.0).abs() < 1e-9);
}

#[test]
fn non_affine_parallel_instances_fall_back_to_best_response() {
    let report = pricing_report("mm1:4, mm1:4").unwrap();
    let p = report.data.as_pricing().unwrap();
    assert_eq!(p.method, "best-response");
    assert!(p.revenue > 0.0);
}

#[test]
fn pricing_error_matrix_is_typed() {
    // Multicommodity: single-price network pricing is an s–t notion.
    let multi = "nodes=4; 0->1: x; 0->1: 1.0; 2->3: x; 2->3: 1.0; \
                 demand 0->1: 1.0; demand 2->3: 1.0";
    assert!(matches!(
        pricing_report(multi).unwrap_err(),
        SoptError::Unsupported {
            task: Task::Pricing,
            ..
        }
    ));
    // Network without a [priceable] edge: a missing parameter, not a crash.
    assert!(matches!(
        pricing_report("nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1").unwrap_err(),
        SoptError::MissingParameter {
            name: "priceable",
            ..
        }
    ));
    // Priceable set forming an s–t cut: unbounded revenue, typed.
    let cut = "nodes=3; 0->1: x [priceable]; 1->2: x; demand 0->2: 1";
    assert!(matches!(
        pricing_report(cut).unwrap_err(),
        SoptError::UnboundedRevenue { .. }
    ));
    // Monopoly on parallel links: also unbounded, also typed.
    assert!(matches!(
        pricing_report("x @ 1").unwrap_err(),
        SoptError::UnboundedRevenue { .. }
    ));
}

#[test]
fn network_auction_peaks_at_the_shortest_path_gap() {
    // Free path cost 2 (x then x at unit flow), blocked alternative 3
    // (2 + x): the single-price auction extracts the unit gap exactly,
    // and the revenue-vs-beta sweep peaks at beta = 1.
    let spec = "nodes=3; 0->1: x [priceable]; 0->1: 2; 1->2: x; demand 0->2: 1";
    let report = pricing_report(spec).unwrap();
    let p = report.data.as_pricing().unwrap();
    assert_eq!(p.method, "single-price-auction");
    assert!((p.revenue - 1.0).abs() < 1e-6, "revenue {}", p.revenue);
    assert!((p.prices[0] - 1.0).abs() < 1e-6, "{:?}", p.prices);
    let best = p
        .sweep
        .iter()
        .max_by(|a, b| a.revenue.total_cmp(&b.revenue))
        .unwrap();
    assert!((best.beta - 1.0).abs() < 1e-9, "peak at beta {}", best.beta);
}
