//! Integration tests for `sopt serve`: the disk-backed second-level
//! cache (warm across restarts, bit-identical), the request/response
//! codec under adversarial input, and the scheduling semantics
//! (priorities, deadline shedding, exactly-once responses).

use proptest::prelude::*;
use stackopt::api::{
    AonMode, CurveStrategy, EngineBuilder, Outcome, Request, RequestId, RequestKind, Response,
    ShedPolicy, SolveRequest, Task,
};

/// A unique temp path per test (no tempfile dependency; the process id
/// plus a per-test tag keeps parallel test binaries apart).
struct TempPath(std::path::PathBuf);

impl TempPath {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("sopt-serve-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        TempPath(path)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn solve_req(id: i64, spec: &str) -> Request {
    Request::solve(
        id,
        SolveRequest {
            spec: spec.into(),
            ..SolveRequest::default()
        },
    )
}

/// The fleet the restart tests solve: every scenario class, several tasks'
/// worth of report shapes, so the disk log round-trips each payload kind.
fn fleet_requests() -> Vec<Request> {
    let mut reqs = vec![
        solve_req(0, "x, 1.0"),
        solve_req(1, "x, 2x, 0.9"),
        solve_req(2, "nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0"),
        solve_req(
            3,
            "nodes=4; 0->1: x; 0->1: 1.0; 2->3: x; 2->3: 1.0; demand 0->1: 1.0; demand 2->3: 2.0",
        ),
    ];
    for (i, task) in [Task::Curve, Task::Equilib, Task::Tolls, Task::Llf]
        .into_iter()
        .enumerate()
    {
        let mut r = solve_req(10 + i as i64, "x, 1.0");
        let RequestKind::Solve(s) = &mut r.kind else {
            unreachable!()
        };
        s.task = Some(task);
        if task == Task::Llf {
            s.alpha = Some(0.5);
        }
        reqs.push(r);
    }
    reqs
}

fn collect_ok(server: &stackopt::api::Server, requests: Vec<Request>) -> Vec<(RequestId, String)> {
    let mut out = Vec::new();
    server.run_requests(requests, |resp| {
        let Outcome::Ok(report) = &resp.outcome else {
            panic!("expected ok, got {:?}", resp.outcome)
        };
        out.push((resp.id.clone().unwrap(), report.to_json()));
    });
    out.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
    out
}

#[test]
fn warm_across_restart_is_bit_identical_and_counts_disk_hits() {
    let cache_file = TempPath::new("warm-restart");
    let builder = EngineBuilder::new().threads(1).persist(&cache_file.0);

    // Cold process: everything is computed and written through to disk.
    let first = {
        let server = builder.server().unwrap();
        let reports = collect_ok(&server, fleet_requests());
        let stats = server.stats();
        assert_eq!(stats.cache_misses, reports.len() as u64);
        assert_eq!(stats.disk_hits, 0, "a cold cache cannot hit disk entries");
        reports
    }; // server (and its file handle) dropped here — the "restart"

    // The log exists, is versioned, and holds one record per unique solve.
    let log = std::fs::read_to_string(&cache_file.0).unwrap();
    assert!(log.starts_with("soptcache 2\n"), "missing header: {log}");
    assert!(log.lines().skip(1).count() >= first.len());

    // Warm process: the same requests replay from the log — report-table
    // hits, no recomputation, byte-identical JSON, nonzero disk hits.
    let server = builder.server().unwrap();
    let second = collect_ok(&server, fleet_requests());
    let stats = server.stats();
    assert_eq!(stats.cache_misses, 0, "warm restart recomputed: {stats:?}");
    assert_eq!(stats.cache_hits, second.len() as u64);
    assert!(stats.disk_hits > 0, "no disk hits counted: {stats:?}");
    assert_eq!(first, second, "restart changed a report byte");
}

#[test]
fn restarted_server_extends_the_log_rather_than_clobbering_it() {
    let cache_file = TempPath::new("extend-log");
    let builder = EngineBuilder::new().threads(1).persist(&cache_file.0);
    {
        let server = builder.server().unwrap();
        collect_ok(&server, vec![solve_req(0, "x, 1.0")]);
    }
    let len_after_first = std::fs::read_to_string(&cache_file.0).unwrap().len();
    {
        // Restart, solve something new: the old record must survive.
        let server = builder.server().unwrap();
        collect_ok(&server, vec![solve_req(1, "x, 2x, 0.9")]);
    }
    let log = std::fs::read_to_string(&cache_file.0).unwrap();
    assert!(log.len() > len_after_first, "log did not grow");
    // Third process sees both entries warm.
    let server = builder.server().unwrap();
    collect_ok(
        &server,
        vec![solve_req(0, "x, 1.0"), solve_req(1, "x, 2x, 0.9")],
    );
    let stats = server.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (2, 0));
    assert_eq!(stats.disk_hits, 2);
}

#[test]
fn foreign_cache_files_are_refused_with_a_typed_error() {
    let cache_file = TempPath::new("foreign");
    std::fs::write(&cache_file.0, "definitely not a soptcache\n").unwrap();
    let err = EngineBuilder::new()
        .persist(&cache_file.0)
        .server()
        .unwrap_err();
    assert!(err.to_string().contains("soptcache"), "{err}");
}

#[test]
fn torn_final_record_is_skipped_on_replay() {
    let cache_file = TempPath::new("torn");
    let builder = EngineBuilder::new().threads(1).persist(&cache_file.0);
    {
        let server = builder.server().unwrap();
        collect_ok(
            &server,
            vec![solve_req(0, "x, 1.0"), solve_req(1, "x, 2x, 0.9")],
        );
    }
    // Simulate a crash mid-append: truncate the last record in half.
    let log = std::fs::read_to_string(&cache_file.0).unwrap();
    let keep = log.len() - log.len() / 4;
    std::fs::write(&cache_file.0, &log[..keep]).unwrap();
    // Replay must survive and keep every intact record.
    let server = builder.server().unwrap();
    collect_ok(
        &server,
        vec![solve_req(0, "x, 1.0"), solve_req(1, "x, 2x, 0.9")],
    );
    let stats = server.stats();
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        2,
        "every request answered: {stats:?}"
    );
    assert!(
        stats.cache_hits >= 1,
        "intact record did not replay: {stats:?}"
    );
}

#[test]
fn metrics_requests_return_populated_histograms_after_a_mixed_workload() {
    // A metrics-enabled server: network solves (cold + warm), a parallel
    // solve, a curve sweep (induced solves), a stats probe — then a
    // `metrics` request must show nonzero per-phase histograms and every
    // ok response must carry telemetry.
    let server = EngineBuilder::new()
        .threads(1)
        .metrics(true)
        .server()
        .unwrap();
    let mut reqs = fleet_requests();
    // A repeat solve: a cache hit.
    reqs.push(solve_req(20, "x, 1.0"));
    // A *network* curve: its α-sweep runs one induced solve per α, which
    // is what populates the `induced` phase (the parallel-links curve is
    // closed-form).
    let mut curve = solve_req(21, "nodes=2; 0->1: x; 0->1: 1.0; demand 0->1: 1.0");
    let RequestKind::Solve(s) = &mut curve.kind else {
        unreachable!()
    };
    s.task = Some(Task::Curve);
    s.steps = Some(4);
    reqs.push(curve);
    let mut ok = 0;
    server.run_requests(reqs, |resp| {
        if let Outcome::Ok(_) = &resp.outcome {
            ok += 1;
            let t = resp.telemetry.expect("metrics server attaches telemetry");
            // elapsed_us can legitimately be 0 on a sub-microsecond cache
            // hit; fw_iters can be 0 on warm solves. Presence is the
            // contract; magnitudes are asserted on the histograms below.
            let _ = t.elapsed_us;
        }
    });
    assert!(ok >= 8, "{ok}");
    let resp = server.handle(Request::metrics("m"));
    let Outcome::Metrics(snap) = &resp.outcome else {
        panic!("{:?}", resp.outcome)
    };
    for phase in ["solve_latency", "queue_wait", "cache_lookup", "induced"] {
        let h = snap.phase(phase).unwrap();
        assert!(h.count > 0, "phase {phase} recorded nothing");
    }
    assert!(snap.counter("cold_starts").unwrap() > 0);
    assert!(snap.counter("fw_iterations").unwrap() > 0);
    // The stats envelope satellite: uptime and queue depth are live.
    let stats = server.stats();
    assert_eq!(stats.queue_depth, 0, "queue drained");
    let line = server.handle(Request::stats("s")).to_json();
    assert!(line.contains("\"uptime_ms\": "), "{line}");
    assert!(line.contains("\"queue_depth\": 0"), "{line}");
    // And the serialized metrics envelope carries the histogram fields
    // the scrape path greps for (full JSON validity is asserted in the
    // codec's own unit tests).
    let line = resp.to_json();
    assert!(line.contains("\"status\": \"metrics\""), "{line}");
    assert!(line.contains("\"solve_latency\": {\"count\": "), "{line}");
    assert!(line.contains("\"p99_us\": "), "{line}");
    assert!(line.contains("\"buckets\": [["), "{line}");
}

#[test]
fn multicommodity_solves_populate_the_aon_metrics() {
    // Two demands sharing one origin: the origin-grouped AON path answers
    // both from a single one-to-many query, and the `aon` phase plus the
    // grouping counters must show up in the metrics surface.
    let server = EngineBuilder::new()
        .threads(1)
        .metrics(true)
        .server()
        .unwrap();
    let mut req = solve_req(
        1,
        "nodes=4; 0->1: x; 0->2: x; 1->3: x; 2->3: 1.0; demand 0->3: 1.0; demand 0->2: 0.5",
    );
    let RequestKind::Solve(s) = &mut req.kind else {
        unreachable!()
    };
    s.task = Some(Task::Equilib);
    let resp = server.handle(req);
    assert!(matches!(resp.outcome, Outcome::Ok(_)), "{:?}", resp.outcome);
    let resp = server.handle(Request::metrics("m"));
    let Outcome::Metrics(snap) = &resp.outcome else {
        panic!("{:?}", resp.outcome)
    };
    assert!(
        snap.phase("aon").unwrap().count > 0,
        "aon phase never recorded"
    );
    // One origin serves two commodities: one group, one query saved.
    assert!(snap.counter("aon_groups").unwrap() >= 1);
    assert!(snap.counter("aon_queries_saved").unwrap() >= 1);
    // The text exposition (--metrics-text) carries the same series.
    let text = snap.to_text();
    assert!(text.contains("sopt_aon_us_count"), "{text}");
    assert!(text.contains("sopt_aon_groups"), "{text}");
    assert!(text.contains("sopt_aon_queries_saved"), "{text}");
}

#[test]
fn metrics_off_servers_answer_metrics_with_an_empty_snapshot() {
    let server = EngineBuilder::new().threads(1).server().unwrap();
    let resp = server.handle(solve_req(1, "x, 1.0"));
    assert!(matches!(resp.outcome, Outcome::Ok(_)));
    assert!(
        resp.telemetry.is_none(),
        "metrics-off servers must not attach telemetry"
    );
    let resp = server.handle(Request::metrics("m"));
    let Outcome::Metrics(snap) = &resp.outcome else {
        panic!("{:?}", resp.outcome)
    };
    assert_eq!(snap.phase("solve_latency").unwrap().count, 0);
}

#[test]
fn expired_deadlines_drop_exactly_once_with_a_typed_response() {
    let server = EngineBuilder::new().threads(2).server().unwrap();
    let mut requests = fleet_requests();
    let mut doomed = solve_req(99, "x, 1.0");
    doomed.deadline_ms = Some(0); // expired on arrival, deterministically
    requests.push(doomed);
    let total = requests.len();
    let mut responses: Vec<Response> = Vec::new();
    server.run_requests(requests, |r| responses.push(r));
    assert_eq!(responses.len(), total, "a response went missing");
    let dropped: Vec<&Response> = responses
        .iter()
        .filter(|r| matches!(r.outcome, Outcome::Dropped { .. }))
        .collect();
    assert_eq!(dropped.len(), 1);
    assert_eq!(dropped[0].id, Some(RequestId::Num(99)));
    assert_eq!(server.stats().dropped, 1);
    // The line a client sees is valid JSON with the dropped status.
    let line = dropped[0].to_json();
    assert!(line.contains("\"status\": \"dropped\""), "{line}");
    // Under ShedPolicy::Never the same request solves.
    let lenient = EngineBuilder::new()
        .threads(1)
        .shed(ShedPolicy::Never)
        .server()
        .unwrap();
    let mut doomed = solve_req(99, "x, 1.0");
    doomed.deadline_ms = Some(0);
    assert!(matches!(lenient.handle(doomed).outcome, Outcome::Ok(_)));
}

/// Deterministic xorshift, as in `spec_roundtrip.rs` — the vendored
/// proptest stub favours scalar strategies, so each case derives a whole
/// request from one seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn maybe<T>(&mut self, draw: impl FnOnce(&mut Self) -> T) -> Option<T> {
        if self.next_usize(2) == 1 {
            Some(draw(self))
        } else {
            None
        }
    }
}

fn random_request(rng: &mut Rng) -> Request {
    let id = if rng.next_usize(2) == 0 {
        // Shift ≥ 11 keeps ids within ±2^53: the wire format is a JSON
        // number, so integer fidelity ends at the f64 mantissa.
        RequestId::Num(rng.next_u64() as i64 >> (11 + rng.next_usize(40)))
    } else {
        // Ids exercise JSON string escaping: quotes, backslashes, unicode.
        let pool = [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "uni\u{2603}code",
            "new\nline",
        ];
        RequestId::Str(pool[rng.next_usize(pool.len())].to_string())
    };
    let kind = if rng.next_usize(8) == 0 {
        RequestKind::Stats
    } else {
        let tasks = [
            Task::Beta,
            Task::Curve,
            Task::Equilib,
            Task::Tolls,
            Task::Llf,
        ];
        RequestKind::Solve(SolveRequest {
            spec: [
                "x, 1.0",
                "x, 2x+0.3, 0.9",
                "nodes=2; 0->1: x; demand 0->1: 1",
            ][rng.next_usize(3)]
            .to_string(),
            task: rng.maybe(|r| tasks[r.next_usize(tasks.len())]),
            rate: rng.maybe(|r| 0.25 + r.next_f64()),
            alpha: rng.maybe(|r| r.next_f64()),
            steps: rng.maybe(|r| r.next_usize(100)),
            tolerance: rng.maybe(|r| 10f64.powi(-(r.next_usize(12) as i32))),
            max_iters: rng.maybe(|r| 1 + r.next_usize(5000)),
            strategy: rng.maybe(|r| {
                if r.next_usize(2) == 0 {
                    CurveStrategy::Strong
                } else {
                    CurveStrategy::Weak
                }
            }),
            price_steps: rng.maybe(|r| 2 + r.next_usize(100)),
            price_rounds: rng.maybe(|r| 1 + r.next_usize(500)),
            aon: rng.maybe(|r| {
                [
                    AonMode::Auto,
                    AonMode::Sequential,
                    AonMode::Grouped,
                    AonMode::Parallel,
                ][r.next_usize(4)]
            }),
        })
    };
    let mut req = Request {
        id,
        kind,
        priority: (rng.next_u64() as i64) >> 40,
        deadline_ms: rng.maybe(|r| r.next_u64() >> 20),
        index: rng.maybe(|r| r.next_usize(1 << 20)),
    };
    if let RequestKind::Stats = req.kind {
        // keep stats requests schema-valid (no solve knobs attach anyway)
        req.index = None;
    }
    req
}

/// Random mutations that corrupt a valid line: truncation, byte flips,
/// injected tokens. None may panic; every rejection must be typed.
fn corrupt(line: &str, rng: &mut Rng) -> String {
    match rng.next_usize(5) {
        0 => {
            let mut end = rng.next_usize(line.len().max(1));
            while !line.is_char_boundary(end) {
                end -= 1;
            }
            line[..end].to_string()
        }
        1 => line.replace('{', "["),
        2 => format!("{line}{{"),
        3 => {
            let mut s = line.to_string();
            let mut at = rng.next_usize(s.len() + 1);
            while !s.is_char_boundary(at) {
                at -= 1;
            }
            s.insert(at, '\u{0}');
            s
        }
        _ => line.replace("\"v\": 1", &format!("\"v\": {}", rng.next_usize(100))),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Well-formed requests survive serialize → parse unchanged.
    #[test]
    fn request_codec_round_trips(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let req = random_request(&mut rng);
        let line = req.to_json();
        let back = Request::parse(&line)
            .unwrap_or_else(|r| panic!("round trip rejected '{line}': {:?}", r.error));
        prop_assert_eq!(back, req);
    }

    /// Corrupted lines never panic, never succeed silently with altered
    /// meaning, and — when an id survives the corruption — echo it.
    #[test]
    fn corrupted_requests_reject_without_panicking(seed in 0u64..1_000_000) {
        let mut rng = Rng::new(seed);
        let req = random_request(&mut rng);
        let line = corrupt(&req.to_json(), &mut rng);
        match Request::parse(&line) {
            Ok(parsed) => {
                // A corruption that still parses must parse to a valid
                // envelope (e.g. truncation landed on a field boundary is
                // impossible — trailing '}' is required — but byte-equal
                // lines pass through).
                prop_assert_eq!(parsed.to_json().is_empty(), false);
            }
            Err(rejection) => {
                // Typed error, never a panic; display form is non-empty.
                prop_assert!(!rejection.error.to_string().is_empty());
            }
        }
    }

    /// The serve loop answers one line per input line (minus blanks),
    /// whatever the input: the exactly-once response contract.
    #[test]
    fn serve_loop_never_skips_an_id(seed in 0u64..100_000) {
        let mut rng = Rng::new(seed);
        let server = EngineBuilder::new().threads(1).server().unwrap();
        let mut input = String::new();
        let mut expected = 0usize;
        for _ in 0..4 {
            let req = random_request(&mut rng);
            let line = if rng.next_usize(3) == 0 {
                corrupt(&req.to_json(), &mut rng)
            } else {
                req.to_json()
            };
            if !line.trim().is_empty() {
                expected += 1;
            }
            input.push_str(&line);
            input.push('\n');
        }
        let mut out = Vec::new();
        server.serve(input.as_bytes(), &mut out).unwrap();
        let out = String::from_utf8(out).unwrap();
        prop_assert_eq!(out.lines().count(), expected);
        for line in out.lines() {
            prop_assert!(line.starts_with("{\"v\": 1, \"id\": "), "{}", line);
        }
    }
}
