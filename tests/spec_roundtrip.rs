//! Property test: the spec grammar round-trips. For any expressible
//! scenario, `format → parse → format` is the identity on spec strings and
//! the reparsed scenario is pointwise identical.

use proptest::prelude::*;
use stackopt::api::Scenario;
use stackopt::latency::LatencyFn;
use stackopt::spec::{format_latency, parse_latency};

/// Deterministic xorshift so each proptest case derives a whole scenario
/// from one seed (the vendored proptest stub favours scalar strategies).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next_f64(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_f64() * bound as f64) as usize % bound
    }
}

/// A random latency drawn from the expressible families.
fn random_latency(rng: &mut Rng) -> LatencyFn {
    match rng.next_usize(6) {
        0 => LatencyFn::identity(),
        1 => LatencyFn::affine(0.25 + 2.0 * rng.next_f64(), rng.next_f64()),
        2 => LatencyFn::constant(0.1 + rng.next_f64()),
        3 => LatencyFn::monomial(0.5 + rng.next_f64(), 2 + rng.next_usize(4) as u32),
        4 => LatencyFn::mm1(1.0 + 4.0 * rng.next_f64()),
        5 => LatencyFn::bpr(
            0.5 + rng.next_f64(),
            0.15,
            5.0 + 10.0 * rng.next_f64(),
            2 + rng.next_usize(4) as u32,
        ),
        _ => unreachable!(),
    }
}

fn assert_round_trip(scenario: &Scenario) {
    let spec1 = scenario.to_spec().expect("expressible scenario");
    let reparsed = Scenario::parse(&spec1)
        .unwrap_or_else(|e| panic!("formatted spec '{spec1}' failed to parse: {e}"));
    let spec2 = reparsed.to_spec().expect("reparse stays expressible");
    assert_eq!(spec1, spec2, "format ∘ parse is not the identity");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Parallel-links scenarios round-trip, including the `@ rate` suffix.
    #[test]
    fn parallel_specs_round_trip(seed in 0u64..100_000) {
        let mut rng = Rng::new(seed);
        let m = 1 + rng.next_usize(6);
        let lats: Vec<LatencyFn> = (0..m).map(|_| random_latency(&mut rng)).collect();
        let rate = if rng.next_usize(2) == 0 { 1.0 } else { 0.5 + 2.0 * rng.next_f64() };
        let scenario = Scenario::from(
            stackopt::equilibrium::parallel::ParallelLinks::new(lats, rate),
        );
        assert_round_trip(&scenario);
    }

    /// Network and multicommodity scenarios round-trip through the
    /// `nodes=…; A->B: …; demand …` grammar.
    #[test]
    fn network_specs_round_trip(seed in 0u64..100_000) {
        let mut rng = Rng::new(seed);
        let n = 3 + rng.next_usize(4); // 3..=6 nodes
        // A guaranteed 0 → n-1 chain plus random forward shortcuts keeps
        // every demand (0 → n-1, and optionally 0 → k) reachable.
        let mut spec = format!("nodes={n}");
        let push_edge = |spec: &mut String, a: usize, b: usize, rng: &mut Rng| {
            let lat = random_latency(rng);
            spec.push_str(&format!("; {a}->{b}: {}", format_latency(&lat).unwrap()));
        };
        for v in 0..n - 1 {
            push_edge(&mut spec, v, v + 1, &mut rng);
        }
        for _ in 0..rng.next_usize(4) {
            let a = rng.next_usize(n - 1);
            let b = a + 1 + rng.next_usize(n - 1 - a);
            push_edge(&mut spec, a, b, &mut rng);
        }
        spec.push_str(&format!("; demand 0->{}: {}", n - 1, 0.5 + rng.next_f64()));
        if rng.next_usize(2) == 0 && n > 2 {
            // Second demand → multicommodity class.
            spec.push_str(&format!("; demand 0->{}: {}", n - 2, 0.25 + rng.next_f64()));
        }
        let scenario = Scenario::parse(&spec)
            .unwrap_or_else(|e| panic!("generated spec '{spec}' failed to parse: {e}"));
        assert_round_trip(&scenario);
    }

    /// k-commodity specs with ≥3 demands and mixed latency kinds — the
    /// fields the multicommodity curve consumes (per-demand endpoints and
    /// rates, in declaration order) — survive the round trip, and the
    /// reparsed scenario stays in the multicommodity class.
    #[test]
    fn multicommodity_specs_with_many_demands_round_trip(seed in 0u64..100_000) {
        let mut rng = Rng::new(seed);
        let n = 5 + rng.next_usize(4); // 5..=8 nodes
        let mut spec = format!("nodes={n}");
        let push_edge = |spec: &mut String, a: usize, b: usize, rng: &mut Rng| {
            let lat = random_latency(rng);
            spec.push_str(&format!("; {a}->{b}: {}", format_latency(&lat).unwrap()));
        };
        // A chain keeps every forward pair reachable; shortcuts mix it up.
        for v in 0..n - 1 {
            push_edge(&mut spec, v, v + 1, &mut rng);
        }
        for _ in 0..rng.next_usize(6) {
            let a = rng.next_usize(n - 1);
            let b = a + 1 + rng.next_usize(n - 1 - a);
            push_edge(&mut spec, a, b, &mut rng);
        }
        // 3..=5 demands over distinct forward pairs (duplicates allowed by
        // the grammar; distinct pairs keep the order observable).
        let k = 3 + rng.next_usize(3);
        for i in 0..k {
            let a = rng.next_usize(n - 1).min(i % (n - 1));
            let b = a + 1 + rng.next_usize(n - 1 - a);
            spec.push_str(&format!("; demand {a}->{b}: {}", 0.25 + rng.next_f64()));
        }
        let scenario = Scenario::parse(&spec)
            .unwrap_or_else(|e| panic!("generated spec '{spec}' failed to parse: {e}"));
        prop_assert_eq!(scenario.class(), stackopt::api::ScenarioClass::Multi);
        assert_round_trip(&scenario);
        // The reparsed commodities match pointwise (endpoints, rates, order).
        let stackopt::api::Scenario::Multi(original) = &scenario else { unreachable!() };
        let reparsed = Scenario::parse(&scenario.to_spec().unwrap()).unwrap();
        let stackopt::api::Scenario::Multi(reparsed) = &reparsed else {
            panic!("reparse left the multicommodity class");
        };
        prop_assert_eq!(original.commodities.len(), reparsed.commodities.len());
        for (a, b) in original.commodities.iter().zip(&reparsed.commodities) {
            prop_assert_eq!(a.source, b.source);
            prop_assert_eq!(a.sink, b.sink);
            prop_assert_eq!(a.rate.to_bits(), b.rate.to_bits());
        }
    }

    /// Single latency expressions: parse ∘ format is pointwise identity.
    #[test]
    fn latency_values_survive_the_round_trip(seed in 0u64..100_000, frac in 0.0..1.0f64) {
        use stackopt::latency::Latency;
        let mut rng = Rng::new(seed);
        let l = random_latency(&mut rng);
        let formatted = format_latency(&l).unwrap();
        let reparsed = parse_latency(&formatted)
            .unwrap_or_else(|e| panic!("'{formatted}': {e}"));
        // Evaluate strictly inside the domain (M/M/1 diverges at capacity).
        let x = frac * l.capacity().min(3.0) * 0.9;
        let (a, b) = (l.value(x), reparsed.value(x));
        prop_assert!((a - b).abs() <= 1e-12 * a.abs().max(1.0), "'{formatted}' at {x}: {a} vs {b}");
    }
}
