//! Warm-start equivalence: a solve seeded from a nearby solution must
//! converge to the same flow (within tolerance) in strictly fewer
//! iterations on perturbed instances — the contract `anarchy_curve`
//! sweeps and the engine's Beta/Tolls seeding rely on.

use stackopt::equilibrium::network::{
    try_induced_network, try_multicommodity_optimum, try_network_nash, try_network_optimum,
    warm_seed_from,
};
use stackopt::instances::random::{random_layered_network, random_multicommodity};
use stackopt::network::instance::{MultiCommodityInstance, NetworkInstance};
use stackopt::network::EdgeFlow;
use stackopt::solver::frank_wolfe::FwOptions;

fn with_rate(inst: &NetworkInstance, rate: f64) -> NetworkInstance {
    NetworkInstance::new(
        inst.graph.clone(),
        inst.latencies.clone(),
        inst.source,
        inst.sink,
        rate,
    )
}

#[test]
fn perturbed_rate_warm_start_is_equivalent_and_strictly_cheaper() {
    let base = random_layered_network(4, 4, 8.0, 7);
    let opts = FwOptions::default();
    let cold_base = try_network_optimum(&base, &opts, None).unwrap();
    assert!(cold_base.converged);

    for bump in [1.02, 1.1, 0.95] {
        let perturbed = with_rate(&base, 8.0 * bump);
        let fresh = try_network_optimum(&perturbed, &opts, None).unwrap();
        let warm = try_network_optimum(&perturbed, &opts, Some(&cold_base)).unwrap();
        assert!(fresh.converged && warm.converged, "bump {bump}");
        assert!(
            warm.iterations < fresh.iterations,
            "bump {bump}: warm {} !< cold {}",
            warm.iterations,
            fresh.iterations
        );
        for (a, b) in warm.flow.0.iter().zip(&fresh.flow.0) {
            assert!((a - b).abs() < 1e-5, "bump {bump}: {a} vs {b}");
        }
    }
}

#[test]
fn perturbed_leader_warm_start_chains_like_a_curve_sweep() {
    let inst = random_layered_network(4, 4, 8.0, 7);
    let opts = FwOptions::default();
    let optimum = try_network_optimum(&inst, &opts, None).unwrap();

    // Two adjacent SCALE strategies, as in an α-sweep.
    let leader_at = |alpha: f64| {
        EdgeFlow(
            optimum
                .flow
                .0
                .iter()
                .map(|o| alpha * o)
                .collect::<Vec<f64>>(),
        )
    };
    let l30 = leader_at(0.30);
    let l35 = leader_at(0.35);
    let f30 = try_induced_network(&inst, &l30, 0.30 * inst.rate, &opts, None).unwrap();
    let cold = try_induced_network(&inst, &l35, 0.35 * inst.rate, &opts, None).unwrap();
    let warm = try_induced_network(&inst, &l35, 0.35 * inst.rate, &opts, Some(&f30)).unwrap();
    assert!(f30.converged && cold.converged && warm.converged);
    assert!(
        warm.iterations < cold.iterations,
        "warm {} !< cold {}",
        warm.iterations,
        cold.iterations
    );
    for (a, b) in warm.flow.0.iter().zip(&cold.flow.0) {
        assert!((a - b).abs() < 1e-5);
    }
}

#[test]
fn perturbed_multicommodity_warm_start_is_equivalent_and_cheaper() {
    // A rate-perturbed k-commodity instance: the seed rescales per
    // commodity and must land on the same equilibrium within 1e-5.
    let base = random_multicommodity(3, 3, 2, 6.0, 11);
    let opts = FwOptions::default();
    let cold_base = try_multicommodity_optimum(&base, &opts, None).unwrap();
    assert!(cold_base.converged);

    for bump in [1.05, 0.93] {
        let perturbed = MultiCommodityInstance::new(
            base.graph.clone(),
            base.latencies.clone(),
            base.commodities
                .iter()
                .map(|c| {
                    let mut c = *c;
                    c.rate *= bump;
                    c
                })
                .collect(),
        );
        let fresh = try_multicommodity_optimum(&perturbed, &opts, None).unwrap();
        let warm = try_multicommodity_optimum(&perturbed, &opts, Some(&cold_base)).unwrap();
        assert!(fresh.converged && warm.converged, "bump {bump}");
        assert!(
            warm.iterations < fresh.iterations,
            "bump {bump}: warm {} !< cold {}",
            warm.iterations,
            fresh.iterations
        );
        for (e, (a, b)) in warm.flow.0.iter().zip(&fresh.flow.0).enumerate() {
            assert!((a - b).abs() < 1e-5, "bump {bump} edge {e}: {a} vs {b}");
        }
    }
}

#[test]
fn batched_evaluation_preserves_warm_and_cold_flows() {
    // Regression guard for the struct-of-arrays fast path: the default
    // options (batched lanes, target-aware shortest paths) and the
    // historical scalar/full-Dijkstra configuration must agree on every
    // edge flow, cold-started and warm-started alike.
    let inst = stackopt::instances::try_grid_city(6, 1.0, 42).unwrap();
    let batched = FwOptions::default();
    let scalar = FwOptions {
        batch: false,
        sp_mode: stackopt::solver::SpMode::Full,
        ..FwOptions::default()
    };
    let cold_b = try_network_optimum(&inst, &batched, None).unwrap();
    let cold_s = try_network_optimum(&inst, &scalar, None).unwrap();
    assert!(cold_b.converged && cold_s.converged);
    for (e, (a, b)) in cold_b.flow.0.iter().zip(&cold_s.flow.0).enumerate() {
        assert!((a - b).abs() < 1e-5, "cold edge {e}: {a} vs {b}");
    }

    let perturbed = with_rate(&inst, 1.1);
    let warm_b = try_network_optimum(&perturbed, &batched, Some(&cold_b)).unwrap();
    let warm_s = try_network_optimum(&perturbed, &scalar, Some(&cold_s)).unwrap();
    assert!(warm_b.converged && warm_s.converged);
    for (e, (a, b)) in warm_b.flow.0.iter().zip(&warm_s.flow.0).enumerate() {
        assert!((a - b).abs() < 1e-5, "warm edge {e}: {a} vs {b}");
    }
}

#[test]
fn grouped_aon_preserves_warm_and_cold_multicommodity_flows() {
    // Regression guard for the origin-grouped AON path: the default
    // options (AonMode::Auto, which groups demands by origin and may
    // thread the fan-out) and the historical per-commodity sequential
    // loop must agree on every edge flow, cold- and warm-started alike.
    use stackopt::solver::AonMode;
    let base = random_multicommodity(3, 3, 2, 6.0, 11);
    let auto = FwOptions::default();
    let sequential = FwOptions {
        aon: AonMode::Sequential,
        ..FwOptions::default()
    };
    let cold_a = try_multicommodity_optimum(&base, &auto, None).unwrap();
    let cold_s = try_multicommodity_optimum(&base, &sequential, None).unwrap();
    assert!(cold_a.converged && cold_s.converged);
    for (e, (a, b)) in cold_a.flow.0.iter().zip(&cold_s.flow.0).enumerate() {
        assert!((a - b).abs() < 1e-5, "cold edge {e}: {a} vs {b}");
    }

    let perturbed = MultiCommodityInstance::new(
        base.graph.clone(),
        base.latencies.clone(),
        base.commodities
            .iter()
            .map(|c| {
                let mut c = *c;
                c.rate *= 1.07;
                c
            })
            .collect(),
    );
    let warm_a = try_multicommodity_optimum(&perturbed, &auto, Some(&cold_a)).unwrap();
    let warm_s = try_multicommodity_optimum(&perturbed, &sequential, Some(&cold_s)).unwrap();
    assert!(warm_a.converged && warm_s.converged);
    for (e, (a, b)) in warm_a.flow.0.iter().zip(&warm_s.flow.0).enumerate() {
        assert!((a - b).abs() < 1e-5, "warm edge {e}: {a} vs {b}");
    }
}

#[test]
fn unusable_seed_falls_back_to_cold_and_still_solves() {
    let inst = random_layered_network(3, 3, 4.0, 3);
    let opts = FwOptions::default();
    // A zero flow has no s→t value: silently ignored.
    let zero = warm_seed_from(&EdgeFlow::zeros(inst.num_edges()));
    let warm = try_network_nash(&inst, &opts, Some(&zero)).unwrap();
    let cold = try_network_nash(&inst, &opts, None).unwrap();
    assert!(warm.converged && cold.converged);
    assert_eq!(warm.iterations, cold.iterations);
    for (a, b) in warm.flow.0.iter().zip(&cold.flow.0) {
        assert_eq!(a, b, "fallback must reproduce the cold solve bit-exactly");
    }
}
