//! Offline stub of `criterion` — see `vendor/README.md`.
//!
//! Keeps the `criterion_group!`/`criterion_main!` bench-target structure
//! compiling and runnable without the real statistics engine: each
//! benchmark is warmed up once, then timed over a small, time-capped batch
//! of iterations, and reported as one `name … mean ± spread` line. Good
//! enough to (a) keep `cargo bench --no-run` green in CI and (b) give
//! order-of-magnitude numbers locally; not a replacement for criterion's
//! statistical rigor.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget after warmup.
const TIME_BUDGET: Duration = Duration::from_millis(300);

/// Hard cap on measured iterations per benchmark.
const MAX_ITERS: u64 = 1000;

/// Identifier for one benchmark within a group (upstream `BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures (upstream `Bencher`).
pub struct Bencher {
    samples: Vec<Duration>,
    /// `--test` mode: validate the routine with exactly one call, no timing.
    smoke_only: bool,
}

impl Bencher {
    /// Times `routine`, keeping its output alive so the call is not
    /// optimised away (pair with `std::hint::black_box` on inputs).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            std::hint::black_box(routine());
            return;
        }
        // Warmup: one untimed call (also pulls code+data into cache).
        std::hint::black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..MAX_ITERS {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn report(path: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{path:<60} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    println!(
        "{path:<60} mean {:>12} [min {:>12}, max {:>12}] ({} iters)",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        samples.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named collection of related benchmarks (upstream `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's time-capped runner
    /// ignores the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the stub.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `routine` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let path = format!("{}/{}", self.name, id.into().id);
        self.criterion.run_one(&path, &mut routine);
        self
    }

    /// Benchmarks `routine` with a borrowed input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let path = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&path, &mut |b| routine(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; the stub prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark manager (upstream `Criterion`).
#[derive(Default)]
pub struct Criterion {
    /// When set (by `--test` or compile-time probing), run each routine
    /// once instead of timing it.
    smoke_only: bool,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks `routine` under a bare name, outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let path = name.to_owned();
        self.run_one(&path, &mut routine);
        self
    }

    /// Parses harness CLI args (subset): `--test` switches to smoke mode,
    /// everything else criterion accepts is ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.smoke_only = std::env::args().any(|a| a == "--test");
        self
    }

    fn run_one(&mut self, path: &str, routine: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            smoke_only: self.smoke_only,
        };
        if self.smoke_only {
            println!("{path:<60} (smoke run)");
        }
        routine(&mut bencher);
        if !self.smoke_only {
            report(path, &bencher.samples);
        }
    }
}

/// Declares a function running the listed benchmark targets (upstream
/// `criterion_group!`, unconfigured form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Benchmark group `", stringify!($name), "` (criterion_group!).")]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups (upstream `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).bench_function("f", |b| b.iter(|| 2 * 2));
        g.bench_with_input(BenchmarkId::new("with", 3), &3u64, |b, &x| b.iter(|| x * x));
        g.finish();
    }

    #[test]
    fn id_forms() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
        assert_eq!(BenchmarkId::from_parameter("8x2_9e").id, "8x2_9e");
    }
}
