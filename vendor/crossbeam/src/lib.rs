//! Offline stub of `crossbeam` scoped threads — see `vendor/README.md`.
//!
//! Implemented on `std::thread::scope` (stable since Rust 1.63), which
//! provides the same structured-concurrency guarantee crossbeam pioneered:
//! all spawned threads are joined before `scope` returns, so borrows of
//! stack data are sound without `'static` bounds.

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result type mirroring `crossbeam::thread::Result`.
pub type ThreadResult<T> = std::thread::Result<T>;

/// A scope handle passed to the closure of [`scope`]; spawn via
/// [`Scope::spawn`].
#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope itself so workers can spawn further workers.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack. Returns `Err` if the closure or any unjoined spawned thread
/// panicked, matching `crossbeam::scope`'s error-reporting contract.
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(move || {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Mirror of the `crossbeam::thread` module path.
pub mod thread {
    pub use super::{scope, Scope, ThreadResult as Result};
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = super::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 2)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn worker_panic_is_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_handle() {
        let r = super::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(r, 7);
    }
}
