//! Offline stub of `parking_lot` — see `vendor/README.md`.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-on-poison,
//! guard-returning API. Only the surface used by this workspace is
//! provided.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive (`parking_lot::Mutex` API subset).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    ///
    /// Unlike `std`, returns the guard directly: a poisoned lock (a panic
    /// while held) is unwrapped into the guard, matching parking_lot's
    /// "no poisoning" semantics as closely as std allows.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (`parking_lot::RwLock` API subset).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
