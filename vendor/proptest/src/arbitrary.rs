//! `any::<T>()` support (offline proptest stub).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy (upstream
/// `proptest::arbitrary::Arbitrary`, reduced to direct generation).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        // Finite, sign-symmetric, spanning many magnitudes; avoids NaN/inf
        // which upstream generates only under special configs.
        let mag = rng.unit_f64() * 2f64.powi((rng.below(64) as i32) - 32);
        if rng.next_u64() & 1 == 0 {
            mag
        } else {
            -mag
        }
    }
}
