//! Offline stub of `proptest` — see `vendor/README.md`.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, the [`strategy::Strategy`] trait over ranges,
//! tuples, `prop_map`, [`prop_oneof!`], [`collection::vec`] and
//! [`arbitrary::any`], plus the `prop_assert*`/`prop_assume!` macros and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **no shrinking** — a failing case reports its seed and case index so
//!   it can be replayed, but is not minimised;
//! * **deterministic seeding** — cases derive from an FNV-1a hash of the
//!   test name plus the case index, so runs are reproducible across
//!   machines (upstream defaults to OS entropy);
//! * strategies sample uniformly without edge-case biasing.

#![forbid(unsafe_code)]

pub mod strategy;

pub mod arbitrary;

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner plumbing: configuration, RNG, and case-level errors.
pub mod test_runner {
    /// Runner configuration (`proptest::test_runner::Config` subset).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected (`prop_assume!`-filtered) cases tolerated
        /// before the test errors out as too-selective.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases, otherwise default.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was filtered out by `prop_assume!`; try another.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type of a single proptest case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic per-case RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        ///
        /// FNV-1a over the name decorrelates tests; the case index is
        /// folded in through one mixing step so consecutive cases differ
        /// in every bit.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            let mut rng = TestRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            };
            rng.next_u64(); // discard the correlated first output
            rng
        }

        /// Next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Drives one `proptest!`-generated test: calls `case(case_index,
    /// rng)` until `config.cases` cases pass, rejections excepted.
    ///
    /// Not part of the public proptest API — the macro expansion calls it.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case_index = 0u64;
        while passed < config.cases {
            let mut rng = TestRng::for_case(name, case_index);
            // Catch panics (e.g. an `.expect()` deep in the code under
            // test) so every failure mode carries the replay seed, not
            // only `prop_assert!`-style ones.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng)))
                .unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    Err(TestCaseError::fail(format!("case body panicked: {msg}")))
                });
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= config.max_global_rejects,
                        "{name}: too many prop_assume! rejections ({rejected}); \
                         strategy is too selective"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{name}: case #{case_index} failed (replay: \
                         TestRng::for_case(\"{name}\", {case_index})):\n{msg}"
                    );
                }
            }
            case_index += 1;
        }
    }
}

/// Everything a property test usually imports (`proptest::prelude` subset).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking directly) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts two values are unequal inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Filters the current case: if the condition does not hold the case is
/// rejected and regenerated rather than failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between heterogeneous strategies with a common value
/// type (`prop_oneof!` subset: no weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (@body $config:expr, $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::test_runner::run(stringify!($name), &config, |rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @body $config, $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @body $crate::test_runner::ProptestConfig::default(), $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_are_in_bounds(x in 1u32..10, y in -2.0..3.5f64, n in 2usize..5) {
            prop_assert!((1..10).contains(&x));
            prop_assert!((-2.0..3.5).contains(&y));
            prop_assert!((2..5).contains(&n));
        }

        #[test]
        fn tuples_and_map((a, b) in (0u64..100, 0u64..100).prop_map(|(x, y)| (x + y, x))) {
            prop_assert!(b <= a);
        }

        #[test]
        fn oneof_and_vec(v in prop_oneof![
            crate::collection::vec(0.0..1.0f64, 1..4),
            crate::collection::vec(2.0..3.0f64, 2..3),
        ]) {
            prop_assert!(!v.is_empty(), "got {v:?}");
            prop_assert!(v.iter().all(|x| (0.0..3.0).contains(x)));
        }

        #[test]
        fn assume_filters(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn half_open_float_strategy_never_yields_upper_bound() {
        let mut rng = crate::test_runner::TestRng::for_case("float_bound", 0);
        let (lo, hi) = (1.0f64, 1.0 + f64::EPSILON);
        for _ in 0..1_000 {
            let v = (lo..hi).generate(&mut rng);
            assert!(v < hi, "half-open strategy yielded its upper bound");
        }
    }

    #[test]
    fn any_u64_varies() {
        let mut rng = crate::test_runner::TestRng::for_case("any_u64_varies", 0);
        let s = any::<u64>();
        let a = s.generate(&mut rng);
        let b = s.generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "case #")]
    fn failure_reports_case() {
        crate::test_runner::run("always_fails", &ProptestConfig::with_cases(3), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "case body panicked: boom")]
    fn panicking_body_still_reports_case() {
        crate::test_runner::run("always_panics", &ProptestConfig::with_cases(3), |_rng| {
            panic!("boom")
        });
    }
}
