//! The [`Strategy`] trait and combinators (offline proptest stub).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` (upstream
/// `proptest::strategy::Strategy`, minus shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a value-dependent follow-up strategy.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Retains only values satisfying `pred`, retrying generation.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy so heterogeneous strategies (e.g. the
    /// arms of [`prop_oneof!`](crate::prop_oneof)) can share a value type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the given value (upstream `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?}: predicate rejected 10000 consecutive values",
            self.whence
        );
    }
}

/// Uniform choice among same-valued strategies (backs
/// [`prop_oneof!`](crate::prop_oneof)).
pub struct OneOf<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        OneOf { options }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

macro_rules! impl_strategy_for_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy {self:?}");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy {self:?}");
                (lo + (rng.next_u64() as i128).rem_euclid(hi - lo + 1)) as $t
            }
        }
    )*};
}

impl_strategy_for_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {self:?}");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // `lo + u*(hi-lo)` can round up to exactly `hi`; a half-open
                // range must never yield its upper bound.
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_strategy_for_float_range!(f64, f32);

macro_rules! impl_strategy_for_tuple {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuple! {
    (S0 0, S1 1);
    (S0 0, S1 1, S2 2);
    (S0 0, S1 1, S2 2, S3 3);
    (S0 0, S1 1, S2 2, S3 3, S4 4);
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);
}
