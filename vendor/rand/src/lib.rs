//! Offline stub of `rand` 0.9 — see `vendor/README.md`.
//!
//! Provides `rngs::StdRng`, [`SeedableRng`], and the [`Rng`] extension
//! trait with `random_range`/`random_bool`, backed by a SplitMix64 core.
//! Deterministic in the seed across platforms; the stream **differs** from
//! upstream `StdRng` (which is ChaCha12), so only seed-stability within
//! this workspace is guaranteed — exactly what the instance generators
//! need.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// An RNG constructible from a seed (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty, like upstream.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "random_bool: p = {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform dyadic rationals in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be sampled uniformly from a range (subset of
/// `rand::distr::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; `hi` is included iff `inclusive`.
    fn sample_between<G: RngCore + ?Sized>(g: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(
                g: &mut G,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = hi_w - lo_w + if inclusive { 1 } else { 0 };
                assert!(span > 0, "random_range: empty range {lo}..{hi}");
                // Modulo bias is ≤ span/2^64 — negligible for test workloads.
                (lo_w + (g.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore + ?Sized>(
                g: &mut G,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // `lo..=hi` admits lo == hi (upstream returns lo there);
                // the open upper end is approximated by [lo, hi), which
                // is measure-equivalent for continuous draws.
                if inclusive {
                    assert!(lo <= hi, "random_range: empty range {lo}..={hi}");
                } else {
                    assert!(lo < hi, "random_range: empty range {lo}..{hi}");
                }
                let v = lo + (unit_f64(g.next_u64()) as $t) * (hi - lo);
                // `lo + u*(hi-lo)` can round up to exactly `hi`; a half-open
                // range must never return its upper bound.
                if !inclusive && v >= hi {
                    hi.next_down().max(lo)
                } else {
                    v
                }
            }
        }
    )*};
}

impl_sample_uniform_float!(f64, f32);

/// Range shapes accepted by [`Rng::random_range`] (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T {
        T::sample_between(g, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, g: &mut G) -> T {
        T::sample_between(g, *self.start(), *self.end(), true)
    }
}

/// Concrete RNG implementations (mirrors the `rand::rngs` module).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele–Lea–Flood): passes BigCrush, one u64 of state.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..=9);
            assert!((3..=9).contains(&x));
            let y = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn half_open_float_range_never_returns_upper_bound() {
        // One-ulp-wide range: the unclamped product rounds to `hi` for
        // roughly half of all draws, so a few iterations cover the case.
        let mut rng = StdRng::seed_from_u64(11);
        let (lo, hi) = (1.0f64, 1.0 + f64::EPSILON);
        for _ in 0..1_000 {
            let v = rng.random_range(lo..hi);
            assert!(v < hi, "half-open range returned its upper bound");
        }
    }

    #[test]
    fn inclusive_float_range_admits_degenerate_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(rng.random_range(0.5..=0.5f64), 0.5);
        let x = rng.random_range(1.0..=2.0f64);
        assert!((1.0..=2.0).contains(&x));
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
